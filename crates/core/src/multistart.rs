//! The multistart driver: independent starts, top-N retention, and the
//! iterated-multilevel quality phase, behind one builder-style API.
//!
//! [`Multistart`] reproduces the paper's 1/2/4/8-start protocol — run the
//! engine `starts` times from independent random seeds and keep the best —
//! and layers the two quality-at-fixed-cost levers of ROADMAP item 5 on
//! top: **V-cycles** (re-coarsen respecting the best partition, re-refine)
//! and **ensemble recombination** (force-coarsen the agreement clusters of
//! the retained top-N starts, then solve seeded from the best). See
//! [`crate::quality`] for the algorithms and their invariants.
//!
//! # Entry points
//!
//! Two families, differing in where randomness comes from:
//!
//! * **Sequential** ([`Multistart::run`] for an engine,
//!   [`Multistart::run_with`] for a closure): starts share the caller's
//!   RNG through a [`RunCtx`], advancing it across starts — one stream,
//!   exactly as a hand-written loop would. The context's sink receives an
//!   [`Event::StartFinished`] per start (plus the engine's own events when
//!   the engine is handed the same sink), its cancel token skips starts
//!   after the first once fired, and its thread budget is forwarded to
//!   the engine and the quality phase.
//! * **Parallel** ([`Multistart::run_parallel`] for an engine,
//!   [`Multistart::run_parallel_with`] for a closure): start `i` always
//!   runs on `ChaCha8Rng::seed_from_u64(base_seed + i)`, so the outcome is
//!   identical for every worker-thread count — including one — and to a
//!   sequential loop with the same per-start seeding. Starts are sharded
//!   over at most `threads` OS threads in contiguous chunks.
//!
//! With quality knobs off (the default), both families reduce exactly to
//! the classic keep-the-best loop; the nine deprecated `multistart*` free
//! functions below are thin wrappers over the builder and are pinned
//! byte-equivalent by `tests/multistart_equivalence.rs`.
//!
//! # Determinism
//!
//! Every path is deterministic in its seeds, and the parallel family is
//! worker-thread-count invariant end-to-end: per-start seeding fixes the
//! starts, and the quality phase draws from its own RNG derived from
//! `base_seed` (never from a worker's stream), running only
//! thread-invariant machinery (restricted coarsening, the FM stack, the
//! synchronous-round k-way engine).
//!
//! # Example
//!
//! ```
//! use vlsi_rng::SeedableRng;
//! use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
//! use vlsi_partition::{EngineConfig, Multistart, RunCtx};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
//! for w in v.windows(2) {
//!     b.add_net(1, [w[0], w[1]])?;
//! }
//! let hg = b.build()?;
//! let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
//! let fixed = FixedVertices::all_free(6);
//! let engine = EngineConfig::by_name("fm").unwrap();
//!
//! let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(0);
//! let outcome = Multistart::new(4)
//!     .keep_top(2)
//!     .run(&hg, &fixed, &balance, &engine, RunCtx::new(&mut rng))?;
//! assert_eq!(outcome.best.cut, 1);
//! assert_eq!(outcome.starts.len(), 4);
//! assert_eq!(outcome.top.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use vlsi_rng::{ChaCha8Rng, Rng, SeedableRng};

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph, Objective};
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use crate::cancel::CancelToken;
use crate::engine::RunCtx;
use crate::quality;
use crate::{PartitionError, PartitionResult};

/// One independent start: its cut and wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartRecord {
    /// Cut achieved by this start.
    pub cut: u64,
    /// Wall-clock time the start took.
    pub elapsed: Duration,
}

/// Outcome of a multistart run: the best solution, the retained top
/// solutions, and per-start records.
#[derive(Debug, Clone, PartialEq)]
pub struct MultistartOutcome {
    /// The best solution of the whole run, including the quality phase
    /// when V-cycles or recombination were enabled — never worse than
    /// `top[0]`.
    pub best: PartitionResult,
    /// Per-start cut/time records, in execution order. Only the raw
    /// starts: the quality phase adds no records.
    pub starts: Vec<StartRecord>,
    /// The retained top start solutions, **ordered by (cut ascending,
    /// start index ascending)** — ties keep the earlier start, so
    /// `top[0]` is always the best *raw* start. Length is
    /// `min(keep_top, executed starts)` (cancellation can shorten it).
    /// The quality phase never rewrites this list.
    pub top: Vec<PartitionResult>,
}

impl MultistartOutcome {
    /// Best cut among the first `n` starts (the paper's "best of s starts"
    /// protocol — s ∈ {1, 2, 4, 8}). As with [`time_of_first`](Self::time_of_first),
    /// `n` is clamped to the number of executed starts, so asking for more
    /// starts than ran reports the best over all of them. Returns `None`
    /// only when `n` is zero (no starts considered).
    pub fn best_of_first(&self, n: usize) -> Option<u64> {
        self.starts[..n.min(self.starts.len())]
            .iter()
            .map(|s| s.cut)
            .min()
    }

    /// Total wall-clock time of the first `n` starts.
    pub fn time_of_first(&self, n: usize) -> Duration {
        self.starts[..n.min(self.starts.len())]
            .iter()
            .map(|s| s.elapsed)
            .sum()
    }

    /// Mean per-start wall-clock time.
    pub fn avg_start_time(&self) -> Duration {
        if self.starts.is_empty() {
            Duration::ZERO
        } else {
            self.time_of_first(self.starts.len()) / self.starts.len() as u32
        }
    }
}

/// Default top-N retention when `ensemble` is enabled without an explicit
/// `keep_top`: agreement over four solutions is selective enough to leave
/// movable mass while still compressing strongly.
const ENSEMBLE_DEFAULT_TOP: usize = 4;

/// XOR salt deriving the quality phase's RNG from `base_seed` in the
/// parallel family — disjoint from every per-start seed (those are the
/// consecutive values `base_seed..base_seed + starts`).
const QUALITY_SEED_SALT: u64 = 0x5143_5943_4C45_u64; // "QCYCLE"

/// Builder-style multistart driver. See the [module docs](self) for the
/// API tour and determinism contract.
///
/// Defaults: retain only the best solution, no V-cycles, no recombination,
/// cut objective.
#[derive(Debug, Clone)]
pub struct Multistart {
    starts: usize,
    keep_top: usize,
    vcycles: usize,
    ensemble: bool,
    objective: Objective,
}

impl Multistart {
    /// A driver running `starts` independent starts.
    ///
    /// # Panics
    /// The run methods panic if `starts == 0`.
    pub fn new(starts: usize) -> Self {
        Multistart {
            starts,
            keep_top: 1,
            vcycles: 0,
            ensemble: false,
            objective: Objective::Cut,
        }
    }

    /// Retains the best `n` start solutions in [`MultistartOutcome::top`]
    /// (ordered by cut, then start index; ties keep the earlier start).
    /// `0` is treated as `1` — the best solution is always retained.
    #[must_use]
    pub fn keep_top(mut self, n: usize) -> Self {
        self.keep_top = n;
        self
    }

    /// Runs up to `n` V-cycles after the starts: re-coarsen respecting the
    /// best partition, re-refine down the new hierarchy, stop early at the
    /// first cycle without strict improvement. The best value is
    /// monotonically non-increasing across cycles.
    #[must_use]
    pub fn vcycles(mut self, n: usize) -> Self {
        self.vcycles = n;
        self
    }

    /// Enables ensemble recombination: the retained top solutions'
    /// agreement clusters are force-coarsened and a final constrained
    /// solve runs seeded from the best start (never worse than it). With
    /// the default `keep_top` of 1 the retention is raised to
    /// `min(4, starts)` solutions so the agreement is over an actual
    /// ensemble; an explicit [`keep_top`](Self::keep_top) ≥ 2 wins.
    /// Recombination runs before any V-cycles.
    #[must_use]
    pub fn ensemble(mut self, on: bool) -> Self {
        self.ensemble = on;
        self
    }

    /// Sets the objective the quality phase refines and reports
    /// (default: plain cut). The engine must be configured for the same
    /// objective — the driver does not rewrite engine configs.
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Effective top-N retention cap.
    fn retention(&self) -> usize {
        if self.ensemble {
            self.keep_top.max(ENSEMBLE_DEFAULT_TOP)
        } else {
            self.keep_top.max(1)
        }
    }

    /// Sequential run of an engine: starts share `ctx.rng` (one stream,
    /// advancing across starts), the engine streams its events into
    /// `ctx.sink` and polls `ctx.cancel`, and `ctx.threads` is forwarded
    /// to the engine and the quality phase. Start 0 always executes, so a
    /// pre-expired token still yields a legal solution; a cancelled run
    /// records one [`Event::Cancelled`] (stage `multistart`) and skips the
    /// quality phase.
    ///
    /// # Errors
    /// Propagates the first error returned by the engine.
    ///
    /// # Panics
    /// Panics if `starts == 0`.
    pub fn run<R, S, E>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        engine: &E,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        R: Rng + ?Sized,
        S: Sink,
        E: crate::Partitioner,
    {
        let RunCtx {
            rng,
            sink,
            cancel,
            threads,
        } = ctx;
        let mut partitioner =
            |hg: &Hypergraph, fixed: &FixedVertices, balance: &BalanceConstraint, rng: &mut R| {
                engine.partition_ctx(
                    hg,
                    fixed,
                    balance,
                    RunCtx::new(rng)
                        .with_sink(sink)
                        .with_cancel(cancel)
                        .with_threads(threads),
                )
            };
        self.run_sequential(
            hg,
            fixed,
            balance,
            rng,
            sink,
            cancel,
            threads,
            &mut partitioner,
        )
    }

    /// Sequential run of an arbitrary closure — anything producing a
    /// [`PartitionResult`] from the instance and an RNG fits. The driver
    /// emits the per-start brackets into `ctx.sink`; pass a sink-aware
    /// closure to also stream each start's internal events.
    ///
    /// # Errors
    /// Propagates the first error returned by `partitioner`.
    ///
    /// # Panics
    /// Panics if `starts == 0`.
    pub fn run_with<R, S, F>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
        mut partitioner: F,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        R: Rng + ?Sized,
        S: Sink,
        F: FnMut(
            &Hypergraph,
            &FixedVertices,
            &BalanceConstraint,
            &mut R,
        ) -> Result<PartitionResult, PartitionError>,
    {
        let RunCtx {
            rng,
            sink,
            cancel,
            threads,
        } = ctx;
        self.run_sequential(
            hg,
            fixed,
            balance,
            rng,
            sink,
            cancel,
            threads,
            &mut partitioner,
        )
    }

    /// Parallel run of an engine across up to `threads` OS threads with
    /// deterministic per-start seeding (`base_seed + i` for start `i`).
    ///
    /// `sink` receives the deterministic summary stream: one
    /// [`Event::StartFinished`] per completed start in ascending order at
    /// collection time, the quality phase's events, then one
    /// [`Event::Cancelled`] when the run was cut short. `engine_sink`
    /// instead receives the engines' internal streams **live from the
    /// worker threads** — with `threads > 1` only the multiset of its
    /// events is deterministic, not their order. It exists for
    /// order-insensitive consumers (above all the
    /// [`CounterSink`](vlsi_trace::CounterSink) a serving layer
    /// aggregates); pass [`NullSink`] to opt out.
    ///
    /// Start 0 always runs; starts not yet begun when `cancel` fires are
    /// skipped entirely, so `outcome.starts` may be shorter than `starts`
    /// — but never empty — and the quality phase is skipped.
    ///
    /// # Errors
    /// Propagates the error of the lowest-indexed failing start.
    ///
    /// # Panics
    /// Panics if `starts == 0` or `threads == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_parallel<S, ES, E>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        threads: usize,
        base_seed: u64,
        engine: &E,
        sink: &S,
        engine_sink: &ES,
        cancel: &CancelToken,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        S: Sink,
        ES: Sink + Sync,
        E: crate::Partitioner + Sync,
    {
        let partitioner = |hg: &Hypergraph,
                           fixed: &FixedVertices,
                           balance: &BalanceConstraint,
                           rng: &mut ChaCha8Rng| {
            engine.partition_ctx(
                hg,
                fixed,
                balance,
                RunCtx::new(rng).with_sink(engine_sink).with_cancel(cancel),
            )
        };
        self.run_parallel_core(
            hg,
            fixed,
            balance,
            threads,
            base_seed,
            sink,
            cancel,
            &partitioner,
        )
    }

    /// Parallel run of an arbitrary `Sync` closure with deterministic
    /// per-start seeding — the untraced, uncancellable spelling of
    /// [`run_parallel`](Self::run_parallel).
    ///
    /// # Errors
    /// Propagates the error of the lowest-indexed failing start.
    ///
    /// # Panics
    /// Panics if `starts == 0` or `threads == 0`.
    pub fn run_parallel_with<F>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        threads: usize,
        base_seed: u64,
        partitioner: &F,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        F: Fn(
                &Hypergraph,
                &FixedVertices,
                &BalanceConstraint,
                &mut ChaCha8Rng,
            ) -> Result<PartitionResult, PartitionError>
            + Sync,
    {
        let never = CancelToken::never();
        self.run_parallel_core(
            hg,
            fixed,
            balance,
            threads,
            base_seed,
            &NullSink,
            &never,
            partitioner,
        )
    }

    /// The shared sequential loop.
    #[allow(clippy::too_many_arguments)]
    fn run_sequential<R, S, F>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
        threads: usize,
        partitioner: &mut F,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        R: Rng + ?Sized,
        S: Sink,
        F: FnMut(
            &Hypergraph,
            &FixedVertices,
            &BalanceConstraint,
            &mut R,
        ) -> Result<PartitionResult, PartitionError>,
    {
        assert!(self.starts > 0, "at least one start required");
        let mut records = Vec::with_capacity(self.starts);
        let mut top = TopSet::new(self.retention());
        for start in 0..self.starts {
            if start > 0 && cancel.is_cancelled() {
                break;
            }
            let t0 = Instant::now();
            let result = partitioner(hg, fixed, balance, rng)?;
            let elapsed = t0.elapsed();
            if S::ENABLED {
                sink.record(&Event::StartFinished {
                    start: start as u32,
                    cut: result.cut,
                    micros: elapsed.as_micros() as u64,
                });
            }
            records.push(StartRecord {
                cut: result.cut,
                elapsed,
            });
            top.offer(start, result);
        }
        let mut best = top.best().clone();
        if cancel.is_cancelled() {
            if S::ENABLED {
                sink.record(&Event::Cancelled {
                    stage: CancelStage::Multistart,
                    value: best.cut,
                });
            }
            return Ok(MultistartOutcome {
                best,
                starts: records,
                top: top.into_vec(),
            });
        }
        best = self.quality_phase(
            hg,
            fixed,
            balance,
            best,
            top.solutions(),
            rng,
            sink,
            cancel,
            threads,
        )?;
        Ok(MultistartOutcome {
            best,
            starts: records,
            top: top.into_vec(),
        })
    }

    /// The shared parallel loop: shard starts over OS threads, collect in
    /// ascending start order, then run the quality phase on the driver
    /// thread with an RNG derived from `base_seed`.
    #[allow(clippy::too_many_arguments)]
    fn run_parallel_core<S, F>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        threads: usize,
        base_seed: u64,
        sink: &S,
        cancel: &CancelToken,
        partitioner: &F,
    ) -> Result<MultistartOutcome, PartitionError>
    where
        S: Sink,
        F: Fn(
                &Hypergraph,
                &FixedVertices,
                &BalanceConstraint,
                &mut ChaCha8Rng,
            ) -> Result<PartitionResult, PartitionError>
            + Sync,
    {
        let starts = self.starts;
        assert!(starts > 0, "at least one start required");
        assert!(threads > 0, "at least one thread required");
        let workers = threads.min(starts);

        let mut slots: Vec<Option<Result<(PartitionResult, Duration), PartitionError>>> =
            (0..starts).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut chunks: Vec<&mut [Option<_>]> = Vec::new();
            let mut rest = slots.as_mut_slice();
            let per = starts.div_ceil(workers);
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                chunks.push(head);
                rest = tail;
            }
            for (c, chunk) in chunks.into_iter().enumerate() {
                let first_index = c * per;
                scope.spawn(move || {
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        let i = first_index + off;
                        // Start 0 must yield a result; everything else is
                        // skippable once the token fires.
                        if i > 0 && cancel.is_cancelled() {
                            continue;
                        }
                        let mut rng = ChaCha8Rng::seed_from_u64(base_seed.wrapping_add(i as u64));
                        let t0 = Instant::now();
                        let result = partitioner(hg, fixed, balance, &mut rng);
                        *slot = Some(result.map(|r| (r, t0.elapsed())));
                    }
                });
            }
        });

        let mut records = Vec::new();
        let mut top = TopSet::new(self.retention());
        for (i, slot) in slots.into_iter().enumerate() {
            let Some(outcome) = slot else {
                continue; // start skipped by cancellation
            };
            let (result, elapsed) = outcome?;
            if S::ENABLED {
                sink.record(&Event::StartFinished {
                    start: i as u32,
                    cut: result.cut,
                    micros: elapsed.as_micros() as u64,
                });
            }
            records.push(StartRecord {
                cut: result.cut,
                elapsed,
            });
            top.offer(i, result);
        }
        let mut best = top.best().clone();
        if cancel.is_cancelled() {
            if S::ENABLED {
                sink.record(&Event::Cancelled {
                    stage: CancelStage::Multistart,
                    value: best.cut,
                });
            }
            return Ok(MultistartOutcome {
                best,
                starts: records,
                top: top.into_vec(),
            });
        }
        // The quality phase never consumes a worker's stream: its RNG is
        // derived from `base_seed` (salted away from every start seed), so
        // the whole run stays worker-thread-count invariant.
        let mut qrng = ChaCha8Rng::seed_from_u64(base_seed ^ QUALITY_SEED_SALT);
        best = self.quality_phase(
            hg,
            fixed,
            balance,
            best,
            top.solutions(),
            &mut qrng,
            sink,
            cancel,
            threads,
        )?;
        Ok(MultistartOutcome {
            best,
            starts: records,
            top: top.into_vec(),
        })
    }

    /// Recombination (over the raw retained starts), then V-cycles.
    /// Both accept a candidate only when it is no worse, so the returned
    /// solution never regresses past `best`.
    #[allow(clippy::too_many_arguments)]
    fn quality_phase<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        mut best: PartitionResult,
        top: &[PartitionResult],
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
        threads: usize,
    ) -> Result<PartitionResult, PartitionError> {
        if self.ensemble {
            if let Some(r) = quality::recombine(
                hg,
                fixed,
                balance,
                self.objective,
                top,
                rng,
                sink,
                cancel,
                threads,
            )? {
                if r.cut <= best.cut {
                    best = r;
                }
            }
        }
        if self.vcycles > 0 {
            best = quality::run_vcycles(
                hg,
                fixed,
                balance,
                self.objective,
                best,
                self.vcycles,
                rng,
                sink,
                cancel,
                threads,
            )?;
        }
        Ok(best)
    }
}

/// Bounded retention of the best `cap` start solutions, ordered by
/// (cut ascending, start index ascending) — the ordering guarantee
/// documented on [`MultistartOutcome::top`].
struct TopSet {
    cap: usize,
    keys: Vec<(u64, usize)>,
    sols: Vec<PartitionResult>,
}

impl TopSet {
    fn new(cap: usize) -> Self {
        TopSet {
            cap: cap.max(1),
            keys: Vec::new(),
            sols: Vec::new(),
        }
    }

    /// Offers start `start`'s solution; keeps it only while it ranks among
    /// the best `cap` seen. Starts must be offered in ascending index
    /// order (keys are then unique, making the order total).
    fn offer(&mut self, start: usize, sol: PartitionResult) {
        let key = (sol.cut, start);
        let pos = self.keys.partition_point(|k| *k <= key);
        if pos >= self.cap {
            return;
        }
        self.keys.insert(pos, key);
        self.sols.insert(pos, sol);
        if self.keys.len() > self.cap {
            self.keys.pop();
            self.sols.pop();
        }
    }

    /// The best solution (ties keep the earliest start).
    fn best(&self) -> &PartitionResult {
        self.sols.first().expect("start 0 always runs")
    }

    fn solutions(&self) -> &[PartitionResult] {
        &self.sols
    }

    fn into_vec(self) -> Vec<PartitionResult> {
        self.sols
    }
}

// ---------------------------------------------------------------------------
// Deprecated free-function wrappers.
//
// The nine pre-builder entry points, kept as thin shims over `Multistart`
// and pinned byte-equivalent by `tests/multistart_equivalence.rs`. New code
// should use the builder.
// ---------------------------------------------------------------------------

/// Runs `partitioner` for `starts` independent starts and keeps the best.
///
/// # Errors
/// Propagates the first error returned by `partitioner`.
#[deprecated(note = "use Multistart::new(starts).run_with(..)")]
pub fn multistart<R, F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    partitioner: F,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    F: FnMut(
        &Hypergraph,
        &FixedVertices,
        &BalanceConstraint,
        &mut R,
    ) -> Result<PartitionResult, PartitionError>,
{
    Multistart::new(starts).run_with(hg, fixed, balance, RunCtx::new(rng), partitioner)
}

/// `multistart` with an [`Event::StartFinished`] per start into `sink`.
///
/// # Errors
/// Propagates the first error returned by `partitioner`.
#[deprecated(note = "use Multistart::new(starts).run_with(..) with a sink-carrying RunCtx")]
pub fn multistart_with_sink<R, S, F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    partitioner: F,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    F: FnMut(
        &Hypergraph,
        &FixedVertices,
        &BalanceConstraint,
        &mut R,
    ) -> Result<PartitionResult, PartitionError>,
{
    Multistart::new(starts).run_with(
        hg,
        fixed,
        balance,
        RunCtx::new(rng).with_sink(sink),
        partitioner,
    )
}

/// Runs `starts` independent starts across `threads` OS threads, keeping
/// the best; start `i` uses `ChaCha8Rng::seed_from_u64(base_seed + i)`.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[deprecated(note = "use Multistart::new(starts).run_parallel_with(..)")]
pub fn multistart_parallel<F>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    partitioner: &F,
) -> Result<MultistartOutcome, PartitionError>
where
    F: Fn(
            &Hypergraph,
            &FixedVertices,
            &BalanceConstraint,
            &mut ChaCha8Rng,
        ) -> Result<PartitionResult, PartitionError>
        + Sync,
{
    Multistart::new(starts).run_parallel_with(hg, fixed, balance, threads, base_seed, partitioner)
}

/// `multistart` over any [`Partitioner`](crate::Partitioner).
///
/// # Errors
/// Propagates the first error returned by the engine.
#[deprecated(note = "use Multistart::new(starts).run(..)")]
pub fn multistart_engine<R, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    E: crate::Partitioner,
{
    Multistart::new(starts).run(hg, fixed, balance, engine, RunCtx::new(rng))
}

/// `multistart_engine` streaming the engine's events plus the per-start
/// brackets into `sink`.
///
/// # Errors
/// Propagates the first error returned by the engine.
#[deprecated(note = "use Multistart::new(starts).run(..) with a sink-carrying RunCtx")]
pub fn multistart_engine_with_sink<R, S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    E: crate::Partitioner,
{
    Multistart::new(starts).run(hg, fixed, balance, engine, RunCtx::new(rng).with_sink(sink))
}

/// `multistart_engine_with_sink` with cooperative cancellation: starts
/// after the first are skipped once the token fires; a cancelled run
/// records one [`Event::Cancelled`] (stage `multistart`).
///
/// # Errors
/// Propagates the first error returned by the engine.
///
/// # Panics
/// Panics if `starts == 0`.
#[deprecated(note = "use Multistart::new(starts).run(..) with a cancel-carrying RunCtx")]
#[allow(clippy::too_many_arguments)]
pub fn multistart_engine_cancellable<R, S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    rng: &mut R,
    sink: &S,
    engine: &E,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    R: Rng + ?Sized,
    S: Sink,
    E: crate::Partitioner,
{
    Multistart::new(starts).run(
        hg,
        fixed,
        balance,
        engine,
        RunCtx::new(rng).with_sink(sink).with_cancel(cancel),
    )
}

/// `multistart_parallel` over any `Sync` [`Partitioner`](crate::Partitioner).
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[deprecated(note = "use Multistart::new(starts).run_parallel(..)")]
pub fn multistart_parallel_engine<E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
) -> Result<MultistartOutcome, PartitionError>
where
    E: crate::Partitioner + Sync,
{
    let never = CancelToken::never();
    Multistart::new(starts).run_parallel(
        hg, fixed, balance, threads, base_seed, engine, &NullSink, &NullSink, &never,
    )
}

/// `multistart_parallel_engine` with cooperative cancellation and a
/// deterministic summary sink.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[deprecated(note = "use Multistart::new(starts).run_parallel(..)")]
#[allow(clippy::too_many_arguments)]
pub fn multistart_parallel_engine_cancellable<S, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
    sink: &S,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    S: Sink,
    E: crate::Partitioner + Sync,
{
    Multistart::new(starts).run_parallel(
        hg, fixed, balance, threads, base_seed, engine, sink, &NullSink, cancel,
    )
}

/// `multistart_parallel_engine_cancellable` with an extra live engine
/// sink (order-insensitive consumers only; see
/// [`Multistart::run_parallel`]).
///
/// # Errors
/// Propagates the error of the lowest-indexed failing start.
///
/// # Panics
/// Panics if `starts == 0` or `threads == 0`.
#[deprecated(note = "use Multistart::new(starts).run_parallel(..)")]
#[allow(clippy::too_many_arguments)]
pub fn multistart_parallel_engine_instrumented<S, ES, E>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    starts: usize,
    threads: usize,
    base_seed: u64,
    engine: &E,
    sink: &S,
    engine_sink: &ES,
    cancel: &CancelToken,
) -> Result<MultistartOutcome, PartitionError>
where
    S: Sink,
    ES: Sink + Sync,
    E: crate::Partitioner + Sync,
{
    Multistart::new(starts).run_parallel(
        hg,
        fixed,
        balance,
        threads,
        base_seed,
        engine,
        sink,
        engine_sink,
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{HypergraphBuilder, PartId, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn tiny() -> (Hypergraph, FixedVertices, BalanceConstraint) {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(4);
        let bc = BalanceConstraint::bisection(4, Tolerance::Relative(0.0));
        (hg, fx, bc)
    }

    #[test]
    fn keeps_best_and_all_records() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cuts = [5u64, 2, 7].into_iter();
        let outcome = Multistart::new(3)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                Ok(PartitionResult::new(
                    vec![PartId(0); 4],
                    cuts.next().unwrap(),
                ))
            })
            .unwrap();
        assert_eq!(outcome.best.cut, 2);
        assert_eq!(outcome.starts.len(), 3);
        assert_eq!(outcome.best_of_first(1), Some(5));
        assert_eq!(outcome.best_of_first(2), Some(2));
        assert_eq!(outcome.best_of_first(9), Some(2));
        assert_eq!(outcome.best_of_first(0), None);
        // Default retention: only the best survives, and it IS the best.
        assert_eq!(outcome.top.len(), 1);
        assert_eq!(outcome.top[0], outcome.best);
    }

    #[test]
    fn best_of_first_clamps_to_executed_starts() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut cuts = [5u64, 2, 7].into_iter();
        let outcome = Multistart::new(3)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                Ok(PartitionResult::new(
                    vec![PartId(0); 4],
                    cuts.next().unwrap(),
                ))
            })
            .unwrap();
        // Exactly at, one past, and far past the executed-start count all
        // report the best over every start that actually ran.
        assert_eq!(outcome.best_of_first(3), Some(2));
        assert_eq!(outcome.best_of_first(4), Some(2));
        assert_eq!(outcome.best_of_first(usize::MAX), Some(2));
        // Zero starts considered: nothing to report.
        assert_eq!(outcome.best_of_first(0), None);
    }

    #[test]
    fn top_n_retention_orders_by_cut_then_start() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut feed = [(5u64, 0u32), (2, 1), (7, 2), (2, 3), (3, 4)].into_iter();
        let outcome = Multistart::new(5)
            .keep_top(3)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                let (cut, tag) = feed.next().unwrap();
                Ok(PartitionResult::new(vec![PartId(tag); 4], cut))
            })
            .unwrap();
        // (2, start 1) < (2, start 3) < (3, start 4); 5 and 7 fall out.
        let cuts: Vec<u64> = outcome.top.iter().map(|r| r.cut).collect();
        assert_eq!(cuts, vec![2, 2, 3]);
        let tags: Vec<u32> = outcome.top.iter().map(|r| r.parts[0].0).collect();
        assert_eq!(tags, vec![1, 3, 4]);
        assert_eq!(outcome.best, outcome.top[0]);
        // Retention never exceeds the executed starts.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let shallow = Multistart::new(2)
            .keep_top(8)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                Ok(PartitionResult::new(vec![PartId(0); 4], 4))
            })
            .unwrap();
        assert_eq!(shallow.top.len(), 2);
    }

    #[test]
    fn errors_propagate() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = Multistart::new(2)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                Err(PartitionError::InfeasibleInstance {
                    vertex: None,
                    detail: "boom".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, PartitionError::InfeasibleInstance { .. }));
    }

    #[test]
    fn ties_keep_earlier_start() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut i = 0u32;
        let outcome = Multistart::new(2)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                i += 1;
                Ok(PartitionResult::new(vec![PartId(i - 1); 4], 3))
            })
            .unwrap();
        assert_eq!(outcome.best.parts[0], PartId(0));
    }

    #[test]
    fn parallel_matches_sequential_seeding() {
        let (hg, fx, bc) = tiny();
        let fm = crate::BipartFm::new(crate::FmConfig::default());
        let run = |hg: &Hypergraph,
                   fx: &FixedVertices,
                   bc: &BalanceConstraint,
                   rng: &mut ChaCha8Rng|
         -> Result<PartitionResult, PartitionError> {
            let r = fm.run_random(hg, fx, bc, rng)?;
            Ok(PartitionResult::new(r.parts, r.cut))
        };
        let par = Multistart::new(5)
            .run_parallel_with(&hg, &fx, &bc, 3, 42, &run)
            .unwrap();
        // Sequential reference with the same per-start seeding.
        let mut seq_cuts = Vec::new();
        for i in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(42 + i);
            seq_cuts.push(run(&hg, &fx, &bc, &mut rng).unwrap().cut);
        }
        let par_cuts: Vec<u64> = par.starts.iter().map(|s| s.cut).collect();
        assert_eq!(par_cuts, seq_cuts);
        assert_eq!(par.best.cut, *seq_cuts.iter().min().unwrap());
    }

    #[test]
    fn parallel_single_thread_works() {
        let (hg, fx, bc) = tiny();
        let outcome = Multistart::new(3)
            .run_parallel_with(&hg, &fx, &bc, 1, 0, &|_, _, _, _| {
                Ok(PartitionResult::new(vec![PartId(0); 4], 2))
            })
            .unwrap();
        assert_eq!(outcome.starts.len(), 3);
        assert_eq!(outcome.best.cut, 2);
    }

    #[test]
    fn parallel_errors_propagate() {
        let (hg, fx, bc) = tiny();
        let err = Multistart::new(4)
            .run_parallel_with(&hg, &fx, &bc, 2, 0, &|_, _, _, _| {
                Err::<PartitionResult, _>(PartitionError::InfeasibleInstance {
                    vertex: None,
                    detail: "boom".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, PartitionError::InfeasibleInstance { .. }));
    }

    #[test]
    fn sink_sees_one_start_event_per_start() {
        use vlsi_trace::{replay, VecSink};
        let (hg, fx, bc) = tiny();
        let fm = crate::BipartFm::new(crate::FmConfig::default());
        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcome = Multistart::new(3)
            .run_with(
                &hg,
                &fx,
                &bc,
                RunCtx::new(&mut rng).with_sink(&sink),
                |hg, fx, bc, rng| {
                    let r = fm.run_random_with_sink(hg, fx, bc, rng, &sink)?;
                    Ok(PartitionResult::new(r.parts, r.cut))
                },
            )
            .unwrap();
        let events = sink.take();
        let start_events: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::StartFinished { start, cut, .. } => Some((*start, *cut)),
                _ => None,
            })
            .collect();
        assert_eq!(start_events.len(), 3);
        for (i, (start, cut)) in start_events.iter().enumerate() {
            assert_eq!(*start as usize, i);
            assert_eq!(*cut, outcome.starts[i].cut);
        }
        // The FM pass events of every start rode the same stream.
        assert!(!replay::pass_summaries(&events).is_empty());
    }

    #[test]
    fn every_registry_engine_runs_under_both_drivers() {
        use crate::engine::{EngineConfig, ENGINES};
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..12).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(12);
        let bc = BalanceConstraint::bisection(12, Tolerance::Relative(0.2));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let seq = Multistart::new(2)
                .run(&hg, &fx, &bc, &engine, RunCtx::new(&mut rng))
                .unwrap();
            let never = CancelToken::never();
            let par = Multistart::new(2)
                .run_parallel(&hg, &fx, &bc, 2, 5, &engine, &NullSink, &NullSink, &never)
                .unwrap();
            assert_eq!(seq.starts.len(), 2, "{}", info.name);
            assert_eq!(par.starts.len(), 2, "{}", info.name);
            assert!(par.best.cut >= 1, "{}", info.name);
        }
    }

    #[test]
    fn cancelled_token_still_yields_start_zero() {
        use crate::engine::EngineConfig;
        use vlsi_trace::VecSink;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..12).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(12);
        let bc = BalanceConstraint::bisection(12, Tolerance::Relative(0.2));
        let engine = EngineConfig::by_name("fm").unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();

        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let seq = Multistart::new(8)
            .run(
                &hg,
                &fx,
                &bc,
                &engine,
                RunCtx::new(&mut rng).with_sink(&sink).with_cancel(&cancel),
            )
            .unwrap();
        assert_eq!(seq.starts.len(), 1, "only start 0 runs when pre-cancelled");
        assert_eq!(seq.best.parts.len(), 12);
        assert!(sink.take().iter().any(
            |e| matches!(e, Event::Cancelled { stage, .. } if *stage == CancelStage::Multistart)
        ));

        let sink = VecSink::new();
        let par = Multistart::new(8)
            .vcycles(2) // must be skipped: the run is already cancelled
            .run_parallel(&hg, &fx, &bc, 2, 3, &engine, &sink, &NullSink, &cancel)
            .unwrap();
        assert!(
            !par.starts.is_empty() && par.starts.len() < 8,
            "pre-cancelled parallel run skips later starts"
        );
        assert_eq!(par.best.parts.len(), 12);
        let events = sink.take();
        assert!(events.iter().any(
            |e| matches!(e, Event::Cancelled { stage, .. } if *stage == CancelStage::Multistart)
        ));
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::VCycleStart { .. })),
            "quality phase must not run after cancellation"
        );
    }

    #[test]
    fn timing_accumulates() {
        let (hg, fx, bc) = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = Multistart::new(2)
            .run_with(&hg, &fx, &bc, RunCtx::new(&mut rng), |_, _, _, _| {
                Ok(PartitionResult::new(vec![PartId(0); 4], 1))
            })
            .unwrap();
        assert!(outcome.time_of_first(2) >= outcome.starts[0].elapsed);
        assert!(outcome.avg_start_time() <= outcome.time_of_first(2));
    }

    /// A 2D grid: structured enough that V-cycles and recombination have
    /// real work to do, unlike the `tiny()` fixture.
    fn grid(side: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..side * side).map(|_| b.add_vertex(1)).collect();
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_net(1, [v[r * side + c], v[r * side + c + 1]])
                        .unwrap();
                }
                if r + 1 < side {
                    b.add_net(1, [v[r * side + c], v[(r + 1) * side + c]])
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn vcycles_and_ensemble_never_worsen_the_best_start() {
        use crate::engine::{EngineConfig, Partitioner};
        let hg = grid(10);
        let fx = FixedVertices::all_free(hg.num_vertices());
        let bc = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
        let engine = EngineConfig::by_name("fm").unwrap();
        let plain = Multistart::new(4)
            .run_parallel_with(&hg, &fx, &bc, 1, 77, &|hg, fx, bc, rng| {
                engine.partition_ctx(hg, fx, bc, RunCtx::new(rng))
            })
            .unwrap();
        let never = CancelToken::never();
        let quality = Multistart::new(4)
            .vcycles(2)
            .ensemble(true)
            .run_parallel(&hg, &fx, &bc, 1, 77, &engine, &NullSink, &NullSink, &never)
            .unwrap();
        // Same starts (same seeding), so the raw records agree...
        let a: Vec<u64> = plain.starts.iter().map(|s| s.cut).collect();
        let b: Vec<u64> = quality.starts.iter().map(|s| s.cut).collect();
        assert_eq!(a, b);
        // ...and the quality phase can only improve on the best of them.
        assert!(quality.best.cut <= plain.best.cut);
        // Ensemble without explicit keep_top retains up to 4 solutions.
        assert_eq!(quality.top.len(), 4);
    }

    #[test]
    fn quality_phase_emits_trace_brackets() {
        use crate::engine::EngineConfig;
        use vlsi_trace::VecSink;
        let hg = grid(8);
        let fx = FixedVertices::all_free(hg.num_vertices());
        let bc = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
        let engine = EngineConfig::by_name("fm").unwrap();
        let sink = VecSink::new();
        let never = CancelToken::never();
        let outcome = Multistart::new(4)
            .vcycles(1)
            .ensemble(true)
            .run_parallel(&hg, &fx, &bc, 2, 13, &engine, &sink, &NullSink, &never)
            .unwrap();
        let events = sink.take();
        let vstarts = events
            .iter()
            .filter(|e| matches!(e, Event::VCycleStart { .. }))
            .count();
        let vends = events
            .iter()
            .filter(|e| matches!(e, Event::VCycleEnd { .. }))
            .count();
        assert_eq!(vstarts, vends);
        assert!(vstarts >= 1, "at least one V-cycle bracket");
        // VCycleEnd values never exceed their VCycleStart.
        let mut open = None;
        for e in &events {
            match e {
                Event::VCycleStart { value, .. } => open = Some(*value),
                Event::VCycleEnd { value, .. } => {
                    assert!(*value <= open.expect("bracketed"));
                    open = None;
                }
                _ => {}
            }
        }
        // Recombination announced itself (the grid's starts agree widely).
        if let Some(Event::RecombineStart {
            solutions, value, ..
        }) = events
            .iter()
            .find(|e| matches!(e, Event::RecombineStart { .. }))
        {
            assert_eq!(*solutions, 4);
            assert_eq!(*value, outcome.top[0].cut);
        }
        assert!(outcome.best.cut <= outcome.top[0].cut);
    }
}
