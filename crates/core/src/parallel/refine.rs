//! Deterministic synchronous-round parallel k-way refinement.
//!
//! This is the `threads >= 2` regime of the k-way refinement dispatch
//! (`kway::refine_pass_threaded`): instead of the sequential pass's one
//! global best-move loop, the pass runs as a sequence of **synchronous
//! rounds** in the style of mt-KaHyPar's deterministic preset. Each round:
//!
//! 1. **Freeze.** The live [`KwayGains`](crate::KwayGains) container is
//!    copied into a [`KwayGainsSnapshot`] and the part loads into a plain
//!    vector. Workers never see the live state.
//! 2. **Propose (parallel).** Worker chunks scan disjoint vertex ranges of
//!    the frozen snapshot; for each vertex they propose its single best
//!    positive-gain move whose destination is feasible under the frozen
//!    loads. Proposals are a pure function of the vertex and the frozen
//!    state, so chunk boundaries cannot affect them.
//! 3. **Merge.** Chunk outputs are concatenated (chunk order = ascending
//!    vertex order) and sorted by `(gain descending, vertex id ascending)`.
//!    Each vertex proposes at most once, so this is a strict total order —
//!    no comparator tie can reach the sort's unstable element order.
//! 4. **Apply (sequential).** Proposals are re-validated in merge order
//!    against the *live* state — fresh gain still positive, fixity intact
//!    (structural: the snapshot only holds allowed targets), destination
//!    within its balance maximum, source staying above its minimum — and
//!    applied one at a time. A vertex moves at most once per round.
//! 5. **Delta-update.** Moved vertices are re-keyed for their new source
//!    part and their neighbourhoods refreshed in the live container, then
//!    the next round begins. A round that applies nothing ends the pass.
//!
//! # Determinism proof obligations
//!
//! The output is byte-identical for **any** worker count (including 1)
//! because every stage is either sequential or chunk-invariant: proposals
//! are pure per-vertex reads of frozen state (obligation: workers must not
//! observe live mutations — enforced by the snapshot copy), the merge
//! order is a strict total order independent of chunking (obligation: at
//! most one proposal per vertex — enforced structurally by
//! [`KwayGainsSnapshot::best_entry`]), and apply/delta-update run on one
//! thread in merge order. `tests/determinism.rs` pins this at 1/2/4/8
//! threads and `tests/refinement_equivalence.rs` replays adversarial
//! equal-gain instances across worker counts.
//!
//! # Termination and never-worsen
//!
//! Every applied move's re-validated gain is strictly positive, so the
//! non-negative integer objective strictly decreases with each move; the
//! pass therefore terminates and never returns a worse assignment than its
//! input. Because moves are only applied when the destination stays within
//! `balance.max` and the source above `balance.min`, a part/resource pair
//! that satisfies its bounds keeps satisfying them — no best-prefix
//! rollback is needed, unlike the sequential pass's relaxed-feasibility
//! exploration.

use vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Hypergraph, Objective, PartId, Partitioning, VertexId,
};
use vlsi_trace::{Event, Sink};

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::gain::KwayGainsSnapshot;
use crate::kway::{build_kway_gains, move_gain};
use crate::{PartitionError, PartitionResult};

use super::{effective_threads, par_map_chunks, GAIN_INIT_GRAIN};

/// One synchronous-round parallel refinement pass over `initial`.
///
/// This is the engine behind [`kway::refine_pass_parallel`]
/// (crate::kway::refine_pass_parallel) and the `threads >= 2` regime of
/// the k-way dispatch; see the module docs for the protocol. Emits
/// [`Event::KwayPassStart`]/[`Event::KwayPassEnd`] brackets around
/// per-round [`Event::RoundStart`]/[`Event::RoundApplied`] pairs, with one
/// [`Event::KwayMove`] per applied move, and polls `cancel` at round
/// boundaries and every [`CHECK_INTERVAL`] proposals inside the apply
/// stage (an armed-but-unfired token is only ever *read*, so it cannot
/// perturb the result).
///
/// # Errors
/// Returns [`PartitionError::Input`] if `initial` is inconsistent with
/// `hg` or violates a fixity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_pass_rounds<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
    pass: u32,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    let k = balance.num_parts();
    let mut p = Partitioning::from_parts_fixed(hg, k, initial, fixed)?;
    let nr = hg.num_resources();
    let n = hg.num_vertices();

    let setup = build_kway_gains(hg, fixed, &p, k, objective, threads);
    let mut gains = setup.gains;
    let mut bucket_ops = if S::ENABLED { setup.inserts } else { 0 };

    let value_before = p.cut_value(objective);
    if S::ENABLED {
        sink.record(&Event::KwayPassStart {
            pass,
            value: value_before,
            movable: setup.movable,
        });
    }

    let mut snap = KwayGainsSnapshot::empty();
    let mut total_moves = 0u64;
    // Dedup stamps for the per-round neighbourhood refresh.
    let mut stamp = vec![0u32; n];
    let mut epoch = 0u32;
    let mut round = 0u32;
    let mut cancelled = false;

    while !cancelled {
        if !cancel.is_never() && cancel.is_cancelled() {
            break;
        }

        // Freeze: workers read the snapshot and these loads, never the
        // live container or partitioning.
        gains.snapshot_into(&mut snap);
        let frozen_loads: Vec<u64> = p.loads().to_vec();

        // Propose: each chunk is a pure function of its vertex range, so
        // concatenating in chunk order yields ascending vertex order for
        // every worker count.
        let workers = effective_threads(threads, n, GAIN_INIT_GRAIN);
        let snap_ref = &snap;
        let loads_ref = &frozen_loads;
        let chunks = par_map_chunks(n, workers, |range| {
            let mut proposals: Vec<(i64, u32, u32)> = Vec::new();
            for i in range {
                let v = VertexId(i as u32);
                let ws = hg.vertex_weights(v);
                let from = p.part_of(v);
                let best = snap_ref.best_entry(v, |to| {
                    ws.iter().enumerate().all(|(r, &w)| {
                        loads_ref[to.index() * nr + r] + w <= balance.max(to, r)
                            && loads_ref[from.index() * nr + r] - w >= balance.min(from, r)
                    })
                });
                if let Some((to, gain)) = best {
                    if gain > 0 {
                        proposals.push((gain, i as u32, to.index() as u32));
                    }
                }
            }
            proposals
        });
        let mut proposals: Vec<(i64, u32, u32)> = chunks.concat();
        if proposals.is_empty() {
            break;
        }
        // Merge: gain descending, vertex id ascending. One proposal per
        // vertex makes this a strict total order — chunking cannot leave
        // a tie for the unstable sort to break arbitrarily.
        proposals.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        if S::ENABLED {
            sink.record(&Event::RoundStart {
                pass,
                round,
                value: p.cut_value(objective),
                proposed: proposals.len() as u64,
            });
        }

        // Apply: single-threaded, in merge order, re-validating every
        // proposal against the live state.
        let mut applied = 0u64;
        let mut moved: Vec<VertexId> = Vec::new();
        for (i, &(_, raw, to_raw)) in proposals.iter().enumerate() {
            if !cancel.is_never() && i % CHECK_INTERVAL == 0 && i > 0 && cancel.is_cancelled() {
                cancelled = true;
                break;
            }
            let v = VertexId(raw);
            let to = PartId(to_raw);
            let from = p.part_of(v);
            if from == to {
                continue;
            }
            let gain = move_gain(hg, &p, v, to, objective);
            if gain <= 0 {
                continue;
            }
            let loads = p.loads();
            let legal = hg.vertex_weights(v).iter().enumerate().all(|(r, &w)| {
                loads[to.index() * nr + r] + w <= balance.max(to, r)
                    && loads[from.index() * nr + r] - w >= balance.min(from, r)
            });
            if !legal {
                continue;
            }
            p.move_vertex(hg, v, to);
            applied += 1;
            moved.push(v);
            if S::ENABLED {
                sink.record(&Event::KwayMove {
                    pass,
                    vertex: v.index() as u64,
                    from: from.index() as u32,
                    to: to.index() as u32,
                    gain,
                    value: p.cut_value(objective),
                });
            }
        }
        total_moves += applied;

        if S::ENABLED {
            sink.record(&Event::RoundApplied {
                pass,
                round,
                applied,
                value: p.cut_value(objective),
            });
        }
        if applied == 0 {
            break;
        }

        // Delta-update the live container: moved vertices get a fresh
        // entry set for their new source part, then their neighbourhoods
        // are re-keyed (each vertex at most once via the epoch stamps).
        epoch += 1;
        for &v in &moved {
            stamp[v.index()] = epoch;
            gains.remove_all(v);
            let fx = fixed.fixity(v);
            let from = p.part_of(v);
            for t in 0..k {
                let to = PartId::from_index(t);
                if to == from || !fx.allows(to) {
                    continue;
                }
                gains.insert(v, to, move_gain(hg, &p, v, to, objective));
                if S::ENABLED {
                    bucket_ops += 1;
                }
            }
            if S::ENABLED {
                bucket_ops += 1; // the remove_all above
            }
        }
        for &v in &moved {
            for &net in hg.vertex_nets(v) {
                for &u in hg.net_pins(net) {
                    if stamp[u.index()] == epoch {
                        continue;
                    }
                    stamp[u.index()] = epoch;
                    let fx = fixed.fixity(u);
                    if fx.is_immovable() {
                        continue;
                    }
                    let uf = p.part_of(u);
                    for t in 0..k {
                        let to = PartId::from_index(t);
                        if to == uf || !fx.allows(to) {
                            continue;
                        }
                        gains.update(u, to, move_gain(hg, &p, u, to, objective));
                        if S::ENABLED {
                            bucket_ops += 1;
                        }
                    }
                }
            }
        }
        gains.decay_max();

        // Gain-consistency cross-check (debug builds): after the delta
        // update every live entry's key must equal a from-scratch gain
        // recomputation — the same invariant the `refine_pass_reference`
        // oracle enforces by construction.
        #[cfg(debug_assertions)]
        verify_gain_consistency(hg, fixed, &p, &gains, k, objective);

        round += 1;
    }

    let value_after = p.cut_value(objective);
    debug_assert!(
        value_after <= value_before,
        "a round worsened the objective"
    );
    if S::ENABLED {
        sink.record(&Event::KwayPassEnd {
            pass,
            moves: total_moves,
            best_prefix: total_moves,
            value_before,
            value_after,
            bucket_ops,
        });
    }
    Ok(PartitionResult::new(p.into_parts(), value_after))
}

/// Asserts that every live `(vertex, target)` entry's key equals the
/// exact [`move_gain`] of that move under the current assignment.
#[cfg(debug_assertions)]
fn verify_gain_consistency(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    p: &Partitioning,
    gains: &crate::KwayGains,
    k: usize,
    objective: Objective,
) {
    for v in hg.vertices() {
        let fx = fixed.fixity(v);
        if fx.is_immovable() {
            continue;
        }
        let from = p.part_of(v);
        for t in 0..k {
            let to = PartId::from_index(t);
            if to == from || !fx.allows(to) {
                continue;
            }
            debug_assert!(gains.contains(v, to), "missing gain entry for {v} -> {to}");
            let expected = move_gain(hg, p, v, to, objective);
            debug_assert_eq!(
                gains.key(v, to),
                expected,
                "stale gain for {v} -> {to} (expected {expected})"
            );
        }
    }
}
