//! Deterministic scoped parallelism for the multilevel hot paths.
//!
//! The repo's hermetic-build policy rules out rayon, so this module is the
//! crate's entire threading layer: a handful of fork–join helpers built on
//! [`std::thread::scope`], the same primitive the parallel multistart
//! driver already uses. Workers are plain scoped threads — no pool object
//! outlives a call, no channels, no unsafe.
//!
//! # Determinism contract
//!
//! Every helper here splits its input into **contiguous index chunks** and
//! reassembles results **in chunk order**. That alone does not make a
//! caller deterministic: the per-chunk closure must produce output that is
//! a pure function of the *items* it covers, never of the chunk boundary
//! or of anything another chunk computes. All in-crate callers obey a
//! stronger rule — their parallel phases compute values that are
//! *identical* to what the sequential code would compute for the same item
//! (heavy-edge match scores, FM/k-way initial gains, per-net coarse pin
//! sets, round-engine move proposals), and every state-dependent decision
//! is replayed afterwards on one thread in the original order.
//!
//! Two consequences, pinned by `tests/determinism.rs`:
//!
//! * **Setup phases** (coarsening, gain initialization) compute exactly
//!   what the sequential code computes, so for a fixed seed the partition
//!   vector is byte-identical for 1, 2, 4 or 8 threads.
//! * **K-way refinement** ([`refine`]) is a *two-regime* contract: a
//!   budget ≤ 1 runs the legacy sequential pass bit-for-bit, while every
//!   budget ≥ 2 runs the synchronous-round engine and yields one identical
//!   answer regardless of the budget. The round engine itself is
//!   worker-count invariant down to a single worker —
//!   `kway::refine_pass_parallel` pins byte-identity at literal
//!   1/2/4/8 — but it is a different algorithm than the sequential pass,
//!   so the regimes may legitimately return different (equally legal)
//!   solutions.
//!
//! Thread counts are budgets, not demands: `threads <= 1`, or inputs below
//! the caller's grain size, run inline on the current thread with zero
//! overhead.

use std::ops::Range;

pub mod refine;

/// Minimum items (gain entries, vertices) per worker before a gain
/// initialization or proposal scan forks threads. Shared by the 2-way FM
/// engine, the k-way gain setup, and the round engine's proposal stage.
pub(crate) const GAIN_INIT_GRAIN: usize = 1024;

/// Decides how many worker threads a phase should actually use.
///
/// Returns 1 (run inline) unless more than one thread was requested *and*
/// there are at least `grain` items per prospective worker; otherwise caps
/// the requested count so each worker keeps a full grain of work.
///
/// # Example
/// ```
/// use vlsi_partition::parallel::effective_threads;
/// assert_eq!(effective_threads(8, 100, 1024), 1); // too little work
/// assert_eq!(effective_threads(8, 3000, 1024), 2);
/// assert_eq!(effective_threads(4, 1 << 20, 1024), 4);
/// assert_eq!(effective_threads(0, 1 << 20, 1024), 1);
/// ```
#[must_use]
pub fn effective_threads(requested: usize, items: usize, grain: usize) -> usize {
    if requested <= 1 {
        return 1;
    }
    requested.min(items / grain.max(1)).max(1)
}

/// Runs `f` over `0..len` split into at most `threads` contiguous chunks
/// and returns the per-chunk results **in chunk order**.
///
/// With `threads <= 1` (or `len <= 1`) this is exactly `vec![f(0..len)]`
/// on the current thread. A worker panic is propagated to the caller.
///
/// # Example
/// ```
/// use vlsi_partition::parallel::par_map_chunks;
/// let sums = par_map_chunks(100, 4, |r| r.sum::<usize>());
/// assert_eq!(sums.iter().sum::<usize>(), (0..100).sum());
/// ```
pub fn par_map_chunks<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let workers = threads.min(len).max(1);
    if workers <= 1 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(workers);
    let ranges: Vec<Range<usize>> = (0..workers)
        .map(|i| (i * chunk).min(len)..((i + 1) * chunk).min(len))
        .filter(|r| !r.is_empty())
        .collect();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || f(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Fills `out` in place: each worker receives a disjoint contiguous slice
/// plus its starting offset into `out`, so `f(offset, slice)` can compute
/// `slice[i]` from global index `offset + i`.
///
/// The first chunk runs on the calling thread (with `threads <= 1` the
/// whole call is just `f(0, out)`); the remaining chunks run on scoped
/// threads. A worker panic is propagated to the caller.
///
/// # Example
/// ```
/// use vlsi_partition::parallel::par_fill;
/// let mut v = vec![0usize; 10];
/// par_fill(&mut v, 3, |off, chunk| {
///     for (i, slot) in chunk.iter_mut().enumerate() {
///         *slot = (off + i) * 2;
///     }
/// });
/// assert_eq!(v[7], 14);
/// ```
pub fn par_fill<T, F>(out: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    if len == 0 {
        return;
    }
    let workers = threads.min(len).max(1);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let (first, mut rest) = out.split_at_mut(chunk.min(len));
        let mut offset = first.len();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let off = offset;
            scope.spawn(move || f(off, head));
            offset += take;
        }
        f(0, first);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_caps_by_grain() {
        assert_eq!(effective_threads(1, 1_000_000, 1), 1);
        assert_eq!(effective_threads(4, 0, 64), 1);
        assert_eq!(effective_threads(4, 64, 64), 1);
        assert_eq!(effective_threads(4, 128, 64), 2);
        assert_eq!(effective_threads(4, 10_000, 64), 4);
        assert_eq!(effective_threads(3, 100, 0), 3); // zero grain never divides by zero
    }

    #[test]
    fn par_map_chunks_is_ordered_and_thread_count_invariant() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 8] {
            let chunks = par_map_chunks(257, threads, |r| r.map(|i| i * i).collect::<Vec<_>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, expected, "{threads} threads");
        }
    }

    #[test]
    fn par_map_chunks_handles_empty_and_tiny_inputs() {
        let empty = par_map_chunks(0, 4, |r| r.len());
        assert_eq!(empty, vec![0]);
        let one = par_map_chunks(1, 4, |r| r.len());
        assert_eq!(one, vec![1]);
    }

    #[test]
    fn par_fill_covers_every_slot_exactly_once() {
        for threads in [1, 2, 3, 5, 8] {
            let mut v = vec![usize::MAX; 1001];
            par_fill(&mut v, threads, |off, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = off + i;
                }
            });
            assert!(
                v.iter().enumerate().all(|(i, &x)| x == i),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn par_fill_on_empty_slice_is_a_noop() {
        let mut v: Vec<u8> = Vec::new();
        par_fill(&mut v, 4, |_, _| unreachable!("no chunk for empty input"));
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        par_map_chunks(100, 4, |r| {
            if r.contains(&99) {
                panic!("worker boom");
            }
            0usize
        });
    }
}
