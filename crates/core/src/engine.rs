//! The unifying `Partitioner` / `Refiner` trait layer and engine registry.
//!
//! Every partitioning engine in this crate — flat FM, the multilevel
//! CLIP-FM engine, Kernighan–Lin, simulated annealing, and the two k-way
//! strategies — is reachable through one interface:
//!
//! * [`Partitioner`]: `hypergraph + fixities + balance + rng (+ sink)` →
//!   [`PartitionResult`]. Implemented by the engine structs themselves
//!   ([`BipartFm`], [`MultilevelPartitioner`]), by the config types of the
//!   function-style engines ([`KlConfig`], [`AnnealingConfig`]), by the
//!   k-way strategy wrappers ([`RecursiveBisection`], [`DirectKway`]), and
//!   by the [`EngineConfig`] registry enum, which dispatches statically to
//!   whichever engine it names.
//! * [`Refiner`]: pass-based improvement of an *existing* assignment.
//!   Implemented by [`BipartFm`] (one full FM run), [`FmStack`] (the
//!   multilevel engine's two-stage CLIP-then-LIFO refinement), and
//!   [`KwayRefiner`] (the k-way FM inner loop).
//!
//! The traits are generic over the RNG and the [`Sink`], so they are not
//! dyn-compatible; by-name construction goes through the [`EngineConfig`]
//! enum instead of trait objects, keeping every call statically dispatched
//! and the [`NullSink`] instrumentation compiled out.
//!
//! # Example
//! ```
//! use vlsi_rng::SeedableRng;
//! use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
//! use vlsi_partition::{EngineConfig, Partitioner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let v: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
//! for w in v.windows(2) {
//!     b.add_net(1, [w[0], w[1]])?;
//! }
//! let hg = b.build()?;
//! let fixed = FixedVertices::all_free(16);
//! let balance = BalanceConstraint::bisection(16, Tolerance::Relative(0.1));
//! let engine = EngineConfig::by_name("ml").unwrap();
//! let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
//! let r = engine.partition(&hg, &fixed, &balance, &mut rng)?;
//! assert_eq!(r.cut, 1);
//! # Ok(())
//! # }
//! ```

use vlsi_rng::Rng;
use vlsi_trace::{NullSink, Sink};

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph, Objective, PartId};

use crate::annealing::{simulated_annealing_cancellable, AnnealingConfig};
use crate::cancel::CancelToken;
use crate::config::{FmConfig, MultilevelConfig};
use crate::fm::BipartFm;
use crate::initial::random_initial;
use crate::kl::{kernighan_lin_cancellable, KlConfig};
use crate::kway;
use crate::multilevel::MultilevelPartitioner;
use crate::{PartitionError, PartitionResult};

/// A complete partitioning engine: produces a solution from scratch given
/// only the instance, the constraints, and a source of randomness.
///
/// Engines that only support bipartitioning return
/// [`PartitionError::UnsupportedPartCount`] when `balance` names more than
/// two parts; the k-way engines take their part count from
/// `balance.num_parts()`.
pub trait Partitioner {
    /// Partitions `hg` under `balance`, honouring `fixed`, streaming the
    /// engine's trace events into `sink` and polling `cancel` at pass
    /// boundaries (and, in the hot engines, every few dozen moves). With
    /// [`NullSink`] the instrumentation compiles out entirely; with
    /// [`CancelToken::never`] every cancellation check is one predictable
    /// branch.
    ///
    /// A cancelled run is **not** an error: the engine stops early and
    /// returns its best-so-far legal solution, recording an
    /// [`Event::Cancelled`](vlsi_trace::Event::Cancelled) per stopped loop.
    ///
    /// # Errors
    /// Engine-specific; at minimum
    /// [`PartitionError::UnsupportedPartCount`] for part counts the engine
    /// cannot handle and [`PartitionError::InfeasibleInstance`] when no
    /// legal solution can be constructed.
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError>;

    /// [`partition_cancellable`](Self::partition_cancellable) with
    /// cancellation disabled.
    ///
    /// # Errors
    /// Same as [`partition_cancellable`](Self::partition_cancellable).
    fn partition_with_sink<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition_cancellable(hg, fixed, balance, rng, sink, &CancelToken::never())
    }

    /// [`partition_with_sink`](Self::partition_with_sink) with the
    /// instrumentation compiled out.
    ///
    /// # Errors
    /// Same as [`partition_with_sink`](Self::partition_with_sink).
    fn partition<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition_with_sink(hg, fixed, balance, rng, &NullSink)
    }
}

/// A pass-based refinement engine: improves an *existing* assignment
/// without changing its feasibility class (fixities are honoured, balance
/// is restored by the best-prefix rollback of each pass).
///
/// Refiners never worsen their input: the returned cut is at most the cut
/// of `parts`.
pub trait Refiner {
    /// Refines `parts`, streaming pass brackets into `sink` and polling
    /// `cancel` at pass boundaries. A cancelled refinement returns the
    /// best solution reached so far (never worse than the input).
    ///
    /// # Errors
    /// [`PartitionError::UnsupportedPartCount`] for part counts the refiner
    /// cannot handle, or [`PartitionError::Input`] when `parts` is
    /// inconsistent with the instance.
    fn refine_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError>;

    /// [`refine_cancellable`](Self::refine_cancellable) with cancellation
    /// disabled.
    ///
    /// # Errors
    /// Same as [`refine_cancellable`](Self::refine_cancellable).
    fn refine_with_sink<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
    ) -> Result<PartitionResult, PartitionError> {
        self.refine_cancellable(hg, fixed, balance, parts, sink, &CancelToken::never())
    }

    /// [`refine_with_sink`](Self::refine_with_sink) with the
    /// instrumentation compiled out.
    ///
    /// # Errors
    /// Same as [`refine_with_sink`](Self::refine_with_sink).
    fn refine(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
    ) -> Result<PartitionResult, PartitionError> {
        self.refine_with_sink(hg, fixed, balance, parts, &NullSink)
    }
}

// --- Partitioner implementations -----------------------------------------

impl Partitioner for BipartFm {
    /// Flat FM from a random legal initial solution.
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let r = self.run_random_cancellable(hg, fixed, balance, rng, sink, cancel)?;
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        self.run_cancellable(hg, fixed, balance, rng, sink, cancel)
            .map(Into::into)
    }
}

impl Partitioner for KlConfig {
    /// Kernighan–Lin from a random legal initial solution.
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let initial = random_initial(hg, fixed, balance, 2, rng)?;
        kernighan_lin_cancellable(hg, fixed, balance, initial, *self, sink, cancel)
    }
}

impl Partitioner for AnnealingConfig {
    /// Simulated annealing from a random legal initial solution.
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let initial = random_initial(hg, fixed, balance, 2, rng)?;
        simulated_annealing_cancellable(hg, fixed, balance, initial, *self, rng, sink, cancel)
    }
}

/// Shared configuration of the two k-way strategies.
///
/// The part count itself is *not* part of the config: both strategies read
/// it from `balance.num_parts()` at partition time, so one engine value can
/// serve any `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayConfig {
    /// Per-part balance tolerance used when the strategy derives internal
    /// balance constraints (recursive-bisection splits, coarsest-level
    /// solves).
    pub tolerance: f64,
    /// Multilevel settings of the inner bipartitioning / coarsening engine.
    pub ml: MultilevelConfig,
    /// Upper bound on direct k-way FM refinement passes.
    pub refine_passes: usize,
    /// Objective optimised by the k-way refinement passes.
    pub objective: Objective,
}

impl Default for KwayConfig {
    fn default() -> Self {
        KwayConfig {
            tolerance: 0.1,
            ml: MultilevelConfig::default(),
            refine_passes: 4,
            objective: Objective::Cut,
        }
    }
}

/// K-way partitioning by recursive bisection with a final direct k-way FM
/// refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecursiveBisection(pub KwayConfig);

impl Partitioner for RecursiveBisection {
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        let cfg = &self.0;
        let r = kway::recursive_bisection_cancellable(
            hg,
            fixed,
            balance.num_parts(),
            cfg.tolerance,
            &cfg.ml,
            rng,
            sink,
            cancel,
        )?;
        if cfg.refine_passes == 0 || cancel.is_cancelled() {
            return Ok(r);
        }
        kway::refine_cancellable(
            hg,
            fixed,
            balance,
            r.parts,
            cfg.objective,
            cfg.refine_passes,
            sink,
            cancel,
        )
    }
}

/// Direct multilevel k-way partitioning: coarsen once, solve the coarsest
/// level k-way, refine k-way at every uncoarsening level.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirectKway(pub KwayConfig);

impl Partitioner for DirectKway {
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        let cfg = &self.0;
        kway::multilevel_kway_cancellable(
            hg,
            fixed,
            balance.num_parts(),
            cfg.tolerance,
            &cfg.ml,
            rng,
            sink,
            cancel,
        )
    }
}

// --- Refiner implementations ---------------------------------------------

impl Refiner for BipartFm {
    /// One full FM run (up to `max_passes` passes) from `parts`.
    fn refine_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        let r = self.run_cancellable(hg, fixed, balance, parts, sink, cancel)?;
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

/// The multilevel engine's per-level refinement: a first FM stage followed
/// by an optional second stage with a different configuration. FM never
/// worsens its input, so the stack dominates either stage alone (the
/// default [`MultilevelConfig`] stacks CLIP then LIFO).
#[derive(Debug, Clone)]
pub struct FmStack {
    first: BipartFm,
    second: Option<BipartFm>,
}

impl FmStack {
    /// Builds a stack from the stage configurations.
    pub fn new(first: FmConfig, second: Option<FmConfig>) -> Self {
        FmStack {
            first: BipartFm::new(first),
            second: second.map(BipartFm::new),
        }
    }

    /// The refinement stack used at every uncoarsening level by a
    /// multilevel engine with configuration `cfg` (`refine_fm` then
    /// `refine_fm2`).
    pub fn from_multilevel(cfg: &MultilevelConfig) -> Self {
        FmStack::new(cfg.refine_fm, cfg.refine_fm2)
    }
}

impl Refiner for FmStack {
    fn refine_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        let r = self
            .first
            .run_cancellable(hg, fixed, balance, parts, sink, cancel)?;
        let r = match &self.second {
            Some(fm2) if !cancel.is_cancelled() => {
                fm2.run_cancellable(hg, fixed, balance, r.parts, sink, cancel)?
            }
            _ => r,
        };
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

/// The direct k-way FM inner loop as a [`Refiner`]: up to `max_passes`
/// passes of [`kway::refine_pass`], stopping early when a pass fails to
/// improve the objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayRefiner {
    /// Objective optimised by each pass.
    pub objective: Objective,
    /// Upper bound on passes.
    pub max_passes: usize,
}

impl Default for KwayRefiner {
    fn default() -> Self {
        KwayRefiner {
            objective: Objective::Cut,
            max_passes: 4,
        }
    }
}

impl Refiner for KwayRefiner {
    fn refine_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        kway::refine_cancellable(
            hg,
            fixed,
            balance,
            parts,
            self.objective,
            self.max_passes,
            sink,
            cancel,
        )
    }
}

// --- Engine registry -----------------------------------------------------

/// A registry entry: canonical name, accepted aliases, one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineInfo {
    /// Canonical engine name (what [`EngineConfig::name`] returns).
    pub name: &'static str,
    /// Alternative names accepted by [`EngineConfig::by_name`].
    pub aliases: &'static [&'static str],
    /// One-line human-readable description.
    pub summary: &'static str,
}

/// The engine registry, in presentation order.
pub const ENGINES: &[EngineInfo] = &[
    EngineInfo {
        name: "fm",
        aliases: &["flat"],
        summary: "flat FM bipartitioner (LIFO gain buckets, random initial solution)",
    },
    EngineInfo {
        name: "ml",
        aliases: &["multilevel"],
        summary: "multilevel CLIP-FM bipartitioner (the paper's engine)",
    },
    EngineInfo {
        name: "kl",
        aliases: &["kernighan-lin"],
        summary: "Kernighan-Lin pairwise-swap bipartitioner",
    },
    EngineInfo {
        name: "sa",
        aliases: &["annealing"],
        summary: "simulated-annealing bipartitioner with calibrated initial temperature",
    },
    EngineInfo {
        name: "rb",
        aliases: &["kway-rb"],
        summary: "k-way by recursive bisection plus direct k-way FM refinement",
    },
    EngineInfo {
        name: "kway",
        aliases: &["kway-direct"],
        summary: "direct multilevel k-way partitioner",
    },
];

/// A partitioning engine selected and configured by name.
///
/// This is the dyn-compatible face of the trait layer: the [`Partitioner`]
/// trait itself is generic over RNG and sink, so engines are enumerated
/// here and dispatched statically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineConfig {
    /// Flat FM from a random initial solution.
    Fm(FmConfig),
    /// The multilevel CLIP-FM engine.
    Multilevel(MultilevelConfig),
    /// Kernighan–Lin pairwise swaps.
    Kl(KlConfig),
    /// Simulated annealing.
    Annealing(AnnealingConfig),
    /// K-way by recursive bisection (plus k-way FM cleanup).
    KwayRb(KwayConfig),
    /// Direct multilevel k-way.
    KwayDirect(KwayConfig),
}

impl EngineConfig {
    /// Constructs the default-configured engine registered under `name`
    /// (canonical name or alias, case-insensitive). Returns `None` for
    /// unknown names.
    pub fn by_name(name: &str) -> Option<EngineConfig> {
        let name = name.to_ascii_lowercase();
        match name.as_str() {
            "fm" | "flat" => Some(EngineConfig::Fm(FmConfig::default())),
            "ml" | "multilevel" => Some(EngineConfig::Multilevel(MultilevelConfig::default())),
            "kl" | "kernighan-lin" => Some(EngineConfig::Kl(KlConfig::default())),
            "sa" | "annealing" => Some(EngineConfig::Annealing(AnnealingConfig::default())),
            "rb" | "kway-rb" => Some(EngineConfig::KwayRb(KwayConfig::default())),
            "kway" | "kway-direct" => Some(EngineConfig::KwayDirect(KwayConfig::default())),
            _ => None,
        }
    }

    /// The engine's canonical registry name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineConfig::Fm(_) => "fm",
            EngineConfig::Multilevel(_) => "ml",
            EngineConfig::Kl(_) => "kl",
            EngineConfig::Annealing(_) => "sa",
            EngineConfig::KwayRb(_) => "rb",
            EngineConfig::KwayDirect(_) => "kway",
        }
    }

    /// The registry entry for this engine.
    pub fn info(&self) -> &'static EngineInfo {
        ENGINES
            .iter()
            .find(|e| e.name == self.name())
            .expect("every variant is registered")
    }
}

impl Partitioner for EngineConfig {
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        match self {
            EngineConfig::Fm(cfg) => {
                BipartFm::new(*cfg).partition_cancellable(hg, fixed, balance, rng, sink, cancel)
            }
            EngineConfig::Multilevel(cfg) => MultilevelPartitioner::new(*cfg)
                .partition_cancellable(hg, fixed, balance, rng, sink, cancel),
            EngineConfig::Kl(cfg) => {
                cfg.partition_cancellable(hg, fixed, balance, rng, sink, cancel)
            }
            EngineConfig::Annealing(cfg) => {
                cfg.partition_cancellable(hg, fixed, balance, rng, sink, cancel)
            }
            EngineConfig::KwayRb(cfg) => RecursiveBisection(*cfg)
                .partition_cancellable(hg, fixed, balance, rng, sink, cancel),
            EngineConfig::KwayDirect(cfg) => {
                DirectKway(*cfg).partition_cancellable(hg, fixed, balance, rng, sink, cancel)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{
        validate_partitioning, HypergraphBuilder, Partitioning, Tolerance, VertexId,
    };
    use vlsi_rng::{ChaCha8Rng, SeedableRng};

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn registry_covers_every_name_and_alias() {
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            assert_eq!(engine.name(), info.name);
            assert_eq!(engine.info().name, info.name);
            for alias in info.aliases {
                assert_eq!(EngineConfig::by_name(alias).unwrap().name(), info.name);
            }
        }
        assert!(EngineConfig::by_name("no-such-engine").is_none());
        // Case-insensitive.
        assert_eq!(EngineConfig::by_name("ML").unwrap().name(), "ml");
    }

    #[test]
    fn every_engine_bisects_a_chain() {
        let hg = chain(24);
        let fixed = FixedVertices::all_free(24);
        let balance = BalanceConstraint::bisection(24, Tolerance::Relative(0.1));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let r = engine.partition(&hg, &fixed, &balance, &mut rng).unwrap();
            let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
            assert!(
                validate_partitioning(&hg, &p, &balance, &fixed).is_valid(),
                "{} produced an invalid bisection",
                info.name
            );
            assert!(
                r.cut <= 5,
                "{}: cut {} far from optimal 1",
                info.name,
                r.cut
            );
        }
    }

    #[test]
    fn kway_engines_partition_four_ways_and_bipart_engines_refuse() {
        let hg = chain(32);
        let fixed = FixedVertices::all_free(32);
        let balance = BalanceConstraint::even(4, &[32], Tolerance::Relative(0.2));
        for name in ["rb", "kway"] {
            let engine = EngineConfig::by_name(name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let r = engine.partition(&hg, &fixed, &balance, &mut rng).unwrap();
            let p = Partitioning::from_parts(&hg, 4, r.parts).unwrap();
            assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
        }
        for name in ["fm", "ml", "kl", "sa"] {
            let engine = EngineConfig::by_name(name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            assert!(
                matches!(
                    engine.partition(&hg, &fixed, &balance, &mut rng),
                    Err(PartitionError::UnsupportedPartCount { .. })
                ),
                "{name} should refuse 4-way"
            );
        }
    }

    #[test]
    fn engines_honour_fixed_vertices() {
        let hg = chain(20);
        let mut fixed = FixedVertices::all_free(20);
        fixed.fix(VertexId(0), PartId(1));
        fixed.fix(VertexId(19), PartId(0));
        let balance = BalanceConstraint::bisection(20, Tolerance::Relative(0.1));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let r = engine.partition(&hg, &fixed, &balance, &mut rng).unwrap();
            assert_eq!(r.parts[0], PartId(1), "{}", info.name);
            assert_eq!(r.parts[19], PartId(0), "{}", info.name);
        }
    }

    #[test]
    fn refiners_never_worsen_and_respect_fixities() {
        let hg = chain(24);
        let mut fixed = FixedVertices::all_free(24);
        fixed.fix(VertexId(5), PartId(0));
        let balance = BalanceConstraint::bisection(24, Tolerance::Relative(0.1));
        // A deliberately bad interleaved start (consistent with the fixity).
        let mut initial: Vec<PartId> = (0..24).map(|i| PartId(i % 2)).collect();
        initial[5] = PartId(0);
        initial[6] = PartId(1);
        let start_cut = Partitioning::from_parts(&hg, 2, initial.clone())
            .unwrap()
            .cut_value(Objective::Cut);

        let fm = BipartFm::new(FmConfig::default());
        let stack = FmStack::from_multilevel(&MultilevelConfig::default());
        let kw = KwayRefiner::default();
        let results = [
            fm.refine(&hg, &fixed, &balance, initial.clone()).unwrap(),
            stack
                .refine(&hg, &fixed, &balance, initial.clone())
                .unwrap(),
            kw.refine(&hg, &fixed, &balance, initial.clone()).unwrap(),
        ];
        for r in &results {
            assert!(r.cut <= start_cut);
            assert_eq!(r.parts[5], PartId(0));
        }
    }

    #[test]
    fn rb_engine_skips_cleanup_when_disabled() {
        let hg = chain(16);
        let fixed = FixedVertices::all_free(16);
        let balance = BalanceConstraint::even(4, &[16], Tolerance::Relative(0.3));
        let cfg = KwayConfig {
            refine_passes: 0,
            ..KwayConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = RecursiveBisection(cfg)
            .partition(&hg, &fixed, &balance, &mut rng)
            .unwrap();
        let p = Partitioning::from_parts(&hg, 4, r.parts).unwrap();
        assert_eq!(p.cut_value(Objective::Cut), r.cut);
    }
}
