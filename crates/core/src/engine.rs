//! The unifying `Partitioner` / `Refiner` trait layer and engine registry.
//!
//! Every partitioning engine in this crate — flat FM, the multilevel
//! CLIP-FM engine, Kernighan–Lin, simulated annealing, and the two k-way
//! strategies — is reachable through one interface:
//!
//! * [`Partitioner`]: `hypergraph + fixities + balance + RunCtx` →
//!   [`PartitionResult`]. Implemented by the engine structs themselves
//!   ([`BipartFm`], [`MultilevelPartitioner`]), by the config types of the
//!   function-style engines ([`KlConfig`], [`AnnealingConfig`]), by the
//!   k-way strategy wrappers ([`RecursiveBisection`], [`DirectKway`]), and
//!   by the [`EngineConfig`] registry enum, which dispatches statically to
//!   whichever engine it names.
//! * [`Refiner`]: pass-based improvement of an *existing* assignment.
//!   Implemented by [`BipartFm`] (one full FM run), [`FmStack`] (the
//!   multilevel engine's two-stage CLIP-then-LIFO refinement), and
//!   [`KwayRefiner`] (the k-way FM inner loop).
//!
//! Both traits have exactly one required method taking a [`RunCtx`]
//! parameter object bundling the run-scoped resources: the RNG, the trace
//! [`Sink`], the [`CancelToken`], and the worker-thread budget. The old
//! `partition` / `partition_with_sink` / `partition_cancellable` (and
//! `refine_*`) method triplets survive as thin deprecated wrappers that
//! build the equivalent `RunCtx` — byte-identical behaviour, pinned by the
//! `runctx_equivalence` test suite.
//!
//! The traits are generic over the RNG and the [`Sink`], so they are not
//! dyn-compatible; by-name construction goes through the [`EngineConfig`]
//! enum instead of trait objects, keeping every call statically dispatched
//! and the [`NullSink`] instrumentation compiled out.
//!
//! # Example
//! ```
//! use vlsi_rng::SeedableRng;
//! use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
//! use vlsi_partition::{EngineConfig, Partitioner, RunCtx};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let v: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
//! for w in v.windows(2) {
//!     b.add_net(1, [w[0], w[1]])?;
//! }
//! let hg = b.build()?;
//! let fixed = FixedVertices::all_free(16);
//! let balance = BalanceConstraint::bisection(16, Tolerance::Relative(0.1));
//! let engine = EngineConfig::by_name("ml")?;
//! let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
//! let r = engine.partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))?;
//! assert_eq!(r.cut, 1);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use vlsi_rng::{ChaCha8Rng, Rng, SeedableRng};
use vlsi_trace::{NullSink, Sink};

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph, Objective, PartId, Tolerance};

use crate::annealing::{simulated_annealing_cancellable, AnnealingConfig};
use crate::cancel::CancelToken;
use crate::config::{FmConfig, MultilevelConfig};
use crate::fm::BipartFm;
use crate::initial::random_initial;
use crate::kl::{kernighan_lin_cancellable, KlConfig};
use crate::kway;
use crate::multilevel::MultilevelPartitioner;
use crate::{PartitionError, PartitionResult};

/// Backs the default `cancel` borrow of [`RunCtx::new`].
static NEVER_CANCEL: CancelToken = CancelToken::never();

/// The run-scoped resources of one engine invocation: RNG, trace sink,
/// cancellation token, and worker-thread budget.
///
/// Built with [`RunCtx::new`] (defaults: [`NullSink`],
/// [`CancelToken::never`], one thread) and customised with the `with_*`
/// builders. A `RunCtx` is consumed by [`Partitioner::partition_ctx`] /
/// [`Refiner::refine_ctx`]; loops that run several engines off one RNG
/// construct a fresh context per call (`RunCtx::new(&mut *rng)`).
///
/// `threads` is a *budget*, not a demand: engines use at most that many
/// worker threads in their parallel phases, and the result is
/// byte-identical for every value (see [`crate::parallel`]). An engine
/// whose own config also names a thread count (e.g.
/// [`MultilevelConfig::threads`]) uses the larger of the two.
pub struct RunCtx<'a, R: ?Sized, S> {
    /// Source of randomness for the run.
    pub rng: &'a mut R,
    /// Receives the engine's trace events ([`NullSink`] compiles them out).
    pub sink: &'a S,
    /// Polled at pass boundaries and every few dozen moves.
    pub cancel: &'a CancelToken,
    /// Worker-thread budget for the parallel hot paths (`<= 1` = inline).
    pub threads: usize,
}

impl<'a, R: Rng + ?Sized> RunCtx<'a, R, NullSink> {
    /// A default context around `rng`: no tracing, no cancellation, one
    /// thread.
    pub fn new(rng: &'a mut R) -> Self {
        RunCtx {
            rng,
            sink: &NullSink,
            cancel: &NEVER_CANCEL,
            threads: 1,
        }
    }
}

impl<'a, R: ?Sized, S> RunCtx<'a, R, S> {
    /// Replaces the trace sink.
    pub fn with_sink<S2: Sink>(self, sink: &'a S2) -> RunCtx<'a, R, S2> {
        RunCtx {
            rng: self.rng,
            sink,
            cancel: self.cancel,
            threads: self.threads,
        }
    }

    /// Replaces the cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets the worker-thread budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Reborrows the context for one nested call, leaving `self` usable
    /// afterwards (the RNG advances across calls, as loops require).
    pub fn reborrow(&mut self) -> RunCtx<'_, R, S> {
        RunCtx {
            rng: self.rng,
            sink: self.sink,
            cancel: self.cancel,
            threads: self.threads,
        }
    }
}

/// A complete partitioning engine: produces a solution from scratch given
/// only the instance, the constraints, and the run context.
///
/// Engines that only support bipartitioning return
/// [`PartitionError::UnsupportedPartCount`] when `balance` names more than
/// two parts; the k-way engines take their part count from
/// `balance.num_parts()`.
pub trait Partitioner {
    /// Partitions `hg` under `balance`, honouring `fixed`. The engine
    /// draws randomness from `ctx.rng`, streams its trace events into
    /// `ctx.sink`, polls `ctx.cancel` at pass boundaries (and, in the hot
    /// engines, every few dozen moves), and uses at most `ctx.threads`
    /// worker threads. With [`NullSink`] the instrumentation compiles out
    /// entirely; with [`CancelToken::never`] every cancellation check is
    /// one predictable branch; the thread budget never changes the result.
    ///
    /// A cancelled run is **not** an error: the engine stops early and
    /// returns its best-so-far legal solution, recording an
    /// [`Event::Cancelled`](vlsi_trace::Event::Cancelled) per stopped loop.
    ///
    /// # Errors
    /// Engine-specific; at minimum
    /// [`PartitionError::UnsupportedPartCount`] for part counts the engine
    /// cannot handle and [`PartitionError::InfeasibleInstance`] when no
    /// legal solution can be constructed.
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError>;

    /// Legacy spelling of [`partition_ctx`](Self::partition_ctx) with the
    /// context passed as separate arguments.
    ///
    /// # Errors
    /// Same as [`partition_ctx`](Self::partition_ctx).
    #[deprecated(note = "use partition_ctx with a RunCtx")]
    fn partition_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition_ctx(
            hg,
            fixed,
            balance,
            RunCtx::new(rng).with_sink(sink).with_cancel(cancel),
        )
    }

    /// Legacy spelling of [`partition_ctx`](Self::partition_ctx) with
    /// cancellation disabled.
    ///
    /// # Errors
    /// Same as [`partition_ctx`](Self::partition_ctx).
    #[deprecated(note = "use partition_ctx with a RunCtx")]
    fn partition_with_sink<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition_ctx(hg, fixed, balance, RunCtx::new(rng).with_sink(sink))
    }

    /// Legacy spelling of [`partition_ctx`](Self::partition_ctx) with all
    /// context defaults (no tracing, no cancellation, one thread).
    ///
    /// # Errors
    /// Same as [`partition_ctx`](Self::partition_ctx).
    #[deprecated(note = "use partition_ctx with a RunCtx")]
    fn partition<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
    ) -> Result<PartitionResult, PartitionError> {
        self.partition_ctx(hg, fixed, balance, RunCtx::new(rng))
    }
}

/// A pass-based refinement engine: improves an *existing* assignment
/// without changing its feasibility class (fixities are honoured, balance
/// is restored by the best-prefix rollback of each pass).
///
/// Refiners never worsen their input: the returned cut is at most the cut
/// of `parts`. Refinement is deterministic — no refiner draws from
/// `ctx.rng` — so the legacy rng-free `refine_*` wrappers pass a dummy
/// seeded RNG that is never consumed.
pub trait Refiner {
    /// Refines `parts`, streaming pass brackets into `ctx.sink`, polling
    /// `ctx.cancel` at pass boundaries, and using at most `ctx.threads`
    /// worker threads. For the 2-way FM stack the budget only parallelises
    /// gain initialization (results are thread-count invariant); for the
    /// k-way refiner it selects the refinement regime — budget ≤ 1 is the
    /// sequential pass, budget ≥ 2 the synchronous-round parallel engine,
    /// byte-identical across all budgets ≥ 2 (see
    /// [`kway::refine_pass_parallel`]). A cancelled refinement returns the
    /// best solution reached so far (never worse than the input).
    ///
    /// # Errors
    /// [`PartitionError::UnsupportedPartCount`] for part counts the refiner
    /// cannot handle, or [`PartitionError::Input`] when `parts` is
    /// inconsistent with the instance.
    fn refine_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError>;

    /// Legacy spelling of [`refine_ctx`](Self::refine_ctx) with the
    /// context passed as separate arguments.
    ///
    /// # Errors
    /// Same as [`refine_ctx`](Self::refine_ctx).
    #[deprecated(note = "use refine_ctx with a RunCtx")]
    fn refine_cancellable<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<PartitionResult, PartitionError> {
        // Refiners never consume randomness; the seed is immaterial.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        self.refine_ctx(
            hg,
            fixed,
            balance,
            parts,
            RunCtx::new(&mut rng).with_sink(sink).with_cancel(cancel),
        )
    }

    /// Legacy spelling of [`refine_ctx`](Self::refine_ctx) with
    /// cancellation disabled.
    ///
    /// # Errors
    /// Same as [`refine_ctx`](Self::refine_ctx).
    #[deprecated(note = "use refine_ctx with a RunCtx")]
    fn refine_with_sink<S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        sink: &S,
    ) -> Result<PartitionResult, PartitionError> {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        self.refine_ctx(
            hg,
            fixed,
            balance,
            parts,
            RunCtx::new(&mut rng).with_sink(sink),
        )
    }

    /// Legacy spelling of [`refine_ctx`](Self::refine_ctx) with all
    /// context defaults.
    ///
    /// # Errors
    /// Same as [`refine_ctx`](Self::refine_ctx).
    #[deprecated(note = "use refine_ctx with a RunCtx")]
    fn refine(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
    ) -> Result<PartitionResult, PartitionError> {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        self.refine_ctx(hg, fixed, balance, parts, RunCtx::new(&mut rng))
    }
}

// --- Partitioner implementations -----------------------------------------

impl Partitioner for BipartFm {
    /// Flat FM from a random legal initial solution.
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let fm = self.clone().with_threads(self.threads().max(ctx.threads));
        let r = fm.run_random_cancellable(hg, fixed, balance, ctx.rng, ctx.sink, ctx.cancel)?;
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

impl Partitioner for MultilevelPartitioner {
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        let cfg = MultilevelConfig {
            threads: self.config().threads.max(ctx.threads),
            ..*self.config()
        };
        MultilevelPartitioner::new(cfg)
            .run_cancellable(hg, fixed, balance, ctx.rng, ctx.sink, ctx.cancel)
            .map(Into::into)
    }
}

impl Partitioner for KlConfig {
    /// Kernighan–Lin from a random legal initial solution.
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let initial = random_initial(hg, fixed, balance, 2, ctx.rng)?;
        kernighan_lin_cancellable(hg, fixed, balance, initial, *self, ctx.sink, ctx.cancel)
    }
}

impl Partitioner for AnnealingConfig {
    /// Simulated annealing from a random legal initial solution.
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let initial = random_initial(hg, fixed, balance, 2, ctx.rng)?;
        simulated_annealing_cancellable(
            hg, fixed, balance, initial, *self, ctx.rng, ctx.sink, ctx.cancel,
        )
    }
}

/// Shared configuration of the two k-way strategies.
///
/// The part count itself is *not* part of the config: both strategies read
/// it from `balance.num_parts()` at partition time, so one engine value can
/// serve any `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayConfig {
    /// Per-part balance tolerance used when the strategy derives internal
    /// balance constraints (recursive-bisection splits, coarsest-level
    /// solves).
    pub tolerance: f64,
    /// Multilevel settings of the inner bipartitioning / coarsening engine
    /// (including its worker-thread budget).
    pub ml: MultilevelConfig,
    /// Upper bound on direct k-way FM refinement passes.
    pub refine_passes: usize,
    /// Objective optimised by the k-way refinement passes.
    pub objective: Objective,
}

impl Default for KwayConfig {
    fn default() -> Self {
        KwayConfig {
            tolerance: 0.1,
            ml: MultilevelConfig::default(),
            refine_passes: 4,
            objective: Objective::Cut,
        }
    }
}

/// K-way partitioning by recursive bisection with a final direct k-way FM
/// refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecursiveBisection(pub KwayConfig);

impl Partitioner for RecursiveBisection {
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        let cfg = &self.0;
        let threads = cfg.ml.threads.max(ctx.threads);
        let ml = MultilevelConfig { threads, ..cfg.ml };
        let r = kway::recursive_bisection_cancellable(
            hg,
            fixed,
            balance.num_parts(),
            cfg.tolerance,
            &ml,
            ctx.rng,
            ctx.sink,
            ctx.cancel,
        )?;
        // The bisection stack only targets even splits. Under a
        // heterogeneous constraint (per-part capacity vectors), repair the
        // assignment deterministically before judging or refining; the
        // uniform even-split case is routed untouched, bit-for-bit.
        let uniform = BalanceConstraint::even(
            balance.num_parts(),
            hg.total_weights(),
            Tolerance::Relative(cfg.tolerance),
        );
        let r = if *balance == uniform {
            r
        } else {
            let (parts, _relocated) =
                crate::warmstart::legalize_assignment(hg, fixed, balance, &r.parts)?;
            let value = vlsi_hypergraph::CutState::new(hg, balance.num_parts(), &parts)
                .value(cfg.objective);
            PartitionResult::new(parts, value)
        };
        if cfg.refine_passes == 0 || ctx.cancel.is_cancelled() {
            return Ok(r);
        }
        kway::refine_threaded(
            hg,
            fixed,
            balance,
            r.parts,
            cfg.objective,
            cfg.refine_passes,
            ctx.sink,
            ctx.cancel,
            threads,
        )
    }
}

/// Direct multilevel k-way partitioning: coarsen once, solve the coarsest
/// level k-way, refine k-way at every uncoarsening level.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirectKway(pub KwayConfig);

impl Partitioner for DirectKway {
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        let cfg = &self.0;
        let ml = MultilevelConfig {
            threads: cfg.ml.threads.max(ctx.threads),
            ..cfg.ml
        };
        // Uniform even split + cut objective is the historical special
        // case, routed through the legacy driver bit-for-bit. Anything
        // else (per-part capacity vectors, multi-resource bounds, km1)
        // takes the constrained driver, which threads the caller's
        // balance and the configured objective through every level.
        let k = balance.num_parts();
        if k > 0 && k <= vlsi_hypergraph::PartSet::MAX_PARTS {
            let uniform =
                BalanceConstraint::even(k, hg.total_weights(), Tolerance::Relative(cfg.tolerance));
            if *balance != uniform || cfg.objective != Objective::Cut {
                return kway::multilevel_kway_constrained(
                    hg,
                    fixed,
                    balance,
                    cfg.objective,
                    cfg.tolerance,
                    &ml,
                    ctx.rng,
                    ctx.sink,
                    ctx.cancel,
                );
            }
        }
        kway::multilevel_kway_cancellable(
            hg,
            fixed,
            k,
            cfg.tolerance,
            &ml,
            ctx.rng,
            ctx.sink,
            ctx.cancel,
        )
    }
}

// --- Refiner implementations ---------------------------------------------

impl Refiner for BipartFm {
    /// One full FM run (up to `max_passes` passes) from `parts`.
    fn refine_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        let fm = self.clone().with_threads(self.threads().max(ctx.threads));
        let r = fm.run_cancellable(hg, fixed, balance, parts, ctx.sink, ctx.cancel)?;
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

/// The multilevel engine's per-level refinement: a first FM stage followed
/// by an optional second stage with a different configuration. FM never
/// worsens its input, so the stack dominates either stage alone (the
/// default [`MultilevelConfig`] stacks CLIP then LIFO).
#[derive(Debug, Clone)]
pub struct FmStack {
    first: BipartFm,
    second: Option<BipartFm>,
}

impl FmStack {
    /// Builds a stack from the stage configurations.
    pub fn new(first: FmConfig, second: Option<FmConfig>) -> Self {
        FmStack {
            first: BipartFm::new(first),
            second: second.map(BipartFm::new),
        }
    }

    /// Sets the worker-thread budget of both stages (gain initialization
    /// parallelises; results are thread-count invariant).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.first = self.first.with_threads(threads);
        self.second = self.second.map(|fm| fm.with_threads(threads));
        self
    }

    /// The refinement stack used at every uncoarsening level by a
    /// multilevel engine with configuration `cfg` (`refine_fm` then
    /// `refine_fm2`, on `cfg.threads` workers).
    pub fn from_multilevel(cfg: &MultilevelConfig) -> Self {
        FmStack::new(cfg.refine_fm, cfg.refine_fm2).with_threads(cfg.threads)
    }
}

impl Refiner for FmStack {
    fn refine_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        let first = self
            .first
            .clone()
            .with_threads(self.first.threads().max(ctx.threads));
        let r = first.run_cancellable(hg, fixed, balance, parts, ctx.sink, ctx.cancel)?;
        let r = match &self.second {
            Some(fm2) if !ctx.cancel.is_cancelled() => {
                let fm2 = fm2.clone().with_threads(fm2.threads().max(ctx.threads));
                fm2.run_cancellable(hg, fixed, balance, r.parts, ctx.sink, ctx.cancel)?
            }
            _ => r,
        };
        Ok(PartitionResult::new(r.parts, r.cut))
    }
}

/// The direct k-way FM inner loop as a [`Refiner`]: up to `max_passes`
/// passes, stopping early when a pass fails to improve the objective.
/// `ctx.threads` picks the pass implementation — the sequential
/// [`kway::refine_pass`] at a budget ≤ 1 (bit-for-bit the legacy
/// behaviour), the synchronous-round parallel engine at ≥ 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayRefiner {
    /// Objective optimised by each pass.
    pub objective: Objective,
    /// Upper bound on passes.
    pub max_passes: usize,
}

impl Default for KwayRefiner {
    fn default() -> Self {
        KwayRefiner {
            objective: Objective::Cut,
            max_passes: 4,
        }
    }
}

impl Refiner for KwayRefiner {
    fn refine_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        parts: Vec<PartId>,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        kway::refine_threaded(
            hg,
            fixed,
            balance,
            parts,
            self.objective,
            self.max_passes,
            ctx.sink,
            ctx.cancel,
            ctx.threads,
        )
    }
}

// --- Engine registry -----------------------------------------------------

/// A registry entry: canonical name, accepted aliases, one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineInfo {
    /// Canonical engine name (what [`EngineConfig::name`] returns).
    pub name: &'static str,
    /// Alternative names accepted by [`EngineConfig::by_name`].
    pub aliases: &'static [&'static str],
    /// One-line human-readable description.
    pub summary: &'static str,
}

/// The engine registry, in presentation order.
pub const ENGINES: &[EngineInfo] = &[
    EngineInfo {
        name: "fm",
        aliases: &["flat"],
        summary: "flat FM bipartitioner (LIFO gain buckets, random initial solution)",
    },
    EngineInfo {
        name: "ml",
        aliases: &["multilevel"],
        summary: "multilevel CLIP-FM bipartitioner (the paper's engine)",
    },
    EngineInfo {
        name: "kl",
        aliases: &["kernighan-lin"],
        summary: "Kernighan-Lin pairwise-swap bipartitioner",
    },
    EngineInfo {
        name: "sa",
        aliases: &["annealing"],
        summary: "simulated-annealing bipartitioner with calibrated initial temperature",
    },
    EngineInfo {
        name: "rb",
        aliases: &["kway-rb"],
        summary: "k-way by recursive bisection plus direct k-way FM refinement",
    },
    EngineInfo {
        name: "kway",
        aliases: &["kway-direct"],
        summary: "direct multilevel k-way partitioner",
    },
];

/// Error of [`EngineConfig::by_name`]: the name matched no registered
/// engine. [`fmt::Display`] lists every valid name and alias, so callers
/// (CLI, service protocol) can surface an actionable message verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngine {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown engine '{}'; known engines: ", self.name)?;
        for (i, info) in ENGINES.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", info.name)?;
            for alias in info.aliases {
                write!(f, " (alias: {alias})")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for UnknownEngine {}

/// A partitioning engine selected and configured by name.
///
/// This is the dyn-compatible face of the trait layer: the [`Partitioner`]
/// trait itself is generic over RNG and sink, so engines are enumerated
/// here and dispatched statically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineConfig {
    /// Flat FM from a random initial solution.
    Fm(FmConfig),
    /// The multilevel CLIP-FM engine.
    Multilevel(MultilevelConfig),
    /// Kernighan–Lin pairwise swaps.
    Kl(KlConfig),
    /// Simulated annealing.
    Annealing(AnnealingConfig),
    /// K-way by recursive bisection (plus k-way FM cleanup).
    KwayRb(KwayConfig),
    /// Direct multilevel k-way.
    KwayDirect(KwayConfig),
}

impl EngineConfig {
    /// Constructs the default-configured engine registered under `name`
    /// (canonical name or alias, case-insensitive).
    ///
    /// # Errors
    /// [`UnknownEngine`] for unregistered names; its `Display` lists every
    /// valid name and alias.
    pub fn by_name(name: &str) -> Result<EngineConfig, UnknownEngine> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "fm" | "flat" => Ok(EngineConfig::Fm(FmConfig::default())),
            "ml" | "multilevel" => Ok(EngineConfig::Multilevel(MultilevelConfig::default())),
            "kl" | "kernighan-lin" => Ok(EngineConfig::Kl(KlConfig::default())),
            "sa" | "annealing" => Ok(EngineConfig::Annealing(AnnealingConfig::default())),
            "rb" | "kway-rb" => Ok(EngineConfig::KwayRb(KwayConfig::default())),
            "kway" | "kway-direct" => Ok(EngineConfig::KwayDirect(KwayConfig::default())),
            _ => Err(UnknownEngine {
                name: name.to_string(),
            }),
        }
    }

    /// The engine's canonical registry name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineConfig::Fm(_) => "fm",
            EngineConfig::Multilevel(_) => "ml",
            EngineConfig::Kl(_) => "kl",
            EngineConfig::Annealing(_) => "sa",
            EngineConfig::KwayRb(_) => "rb",
            EngineConfig::KwayDirect(_) => "kway",
        }
    }

    /// The registry entry for this engine.
    pub fn info(&self) -> &'static EngineInfo {
        ENGINES
            .iter()
            .find(|e| e.name == self.name())
            .expect("every variant is registered")
    }

    /// Sets the engine's *internal* worker-thread budget where the engine
    /// has one (the multilevel and k-way configs); a no-op for the flat
    /// engines, which instead honour the per-run
    /// [`RunCtx::threads`] budget. Results are thread-count invariant
    /// either way.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        match &mut self {
            EngineConfig::Multilevel(cfg) => cfg.threads = threads,
            EngineConfig::KwayRb(cfg) | EngineConfig::KwayDirect(cfg) => cfg.ml.threads = threads,
            EngineConfig::Fm(_) | EngineConfig::Kl(_) | EngineConfig::Annealing(_) => {}
        }
        self
    }

    /// Sets the objective for engines that optimise one (the k-way
    /// configs); a no-op for the bipartitioning engines, where cut and
    /// connectivity coincide (`km1 == cut` at `k = 2`).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        match &mut self {
            EngineConfig::KwayRb(cfg) | EngineConfig::KwayDirect(cfg) => {
                cfg.objective = objective;
            }
            EngineConfig::Fm(_)
            | EngineConfig::Kl(_)
            | EngineConfig::Annealing(_)
            | EngineConfig::Multilevel(_) => {}
        }
        self
    }

    /// The objective this engine optimises (the k-way configs carry one;
    /// the bipartitioning engines are fixed on cut, where the two
    /// objectives coincide).
    pub fn objective(&self) -> Objective {
        match self {
            EngineConfig::KwayRb(cfg) | EngineConfig::KwayDirect(cfg) => cfg.objective,
            _ => Objective::Cut,
        }
    }
}

impl Partitioner for EngineConfig {
    fn partition_ctx<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        ctx: RunCtx<'_, R, S>,
    ) -> Result<PartitionResult, PartitionError> {
        match self {
            EngineConfig::Fm(cfg) => BipartFm::new(*cfg).partition_ctx(hg, fixed, balance, ctx),
            EngineConfig::Multilevel(cfg) => {
                MultilevelPartitioner::new(*cfg).partition_ctx(hg, fixed, balance, ctx)
            }
            EngineConfig::Kl(cfg) => cfg.partition_ctx(hg, fixed, balance, ctx),
            EngineConfig::Annealing(cfg) => cfg.partition_ctx(hg, fixed, balance, ctx),
            EngineConfig::KwayRb(cfg) => {
                RecursiveBisection(*cfg).partition_ctx(hg, fixed, balance, ctx)
            }
            EngineConfig::KwayDirect(cfg) => {
                DirectKway(*cfg).partition_ctx(hg, fixed, balance, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{
        validate_partitioning, HypergraphBuilder, Partitioning, Tolerance, VertexId,
    };
    use vlsi_rng::{ChaCha8Rng, SeedableRng};

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn registry_covers_every_name_and_alias() {
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            assert_eq!(engine.name(), info.name);
            assert_eq!(engine.info().name, info.name);
            for alias in info.aliases {
                assert_eq!(EngineConfig::by_name(alias).unwrap().name(), info.name);
            }
        }
        assert!(EngineConfig::by_name("no-such-engine").is_err());
        // Case-insensitive.
        assert_eq!(EngineConfig::by_name("ML").unwrap().name(), "ml");
    }

    #[test]
    fn unknown_engine_error_lists_every_name_and_alias() {
        let err = EngineConfig::by_name("quantum").unwrap_err();
        assert_eq!(err.name, "quantum");
        let msg = err.to_string();
        assert!(msg.contains("unknown engine 'quantum'"), "{msg}");
        for info in ENGINES {
            assert!(msg.contains(info.name), "{msg} missing {}", info.name);
            for alias in info.aliases {
                assert!(msg.contains(alias), "{msg} missing alias {alias}");
            }
        }
    }

    #[test]
    fn with_threads_reaches_the_threaded_engines_only() {
        match EngineConfig::by_name("ml").unwrap().with_threads(4) {
            EngineConfig::Multilevel(cfg) => assert_eq!(cfg.threads, 4),
            other => panic!("unexpected engine {other:?}"),
        }
        match EngineConfig::by_name("kway").unwrap().with_threads(3) {
            EngineConfig::KwayDirect(cfg) => assert_eq!(cfg.ml.threads, 3),
            other => panic!("unexpected engine {other:?}"),
        }
        let fm = EngineConfig::by_name("fm").unwrap();
        assert_eq!(fm.with_threads(8), fm); // flat engines: config untouched
    }

    #[test]
    fn every_engine_bisects_a_chain() {
        let hg = chain(24);
        let fixed = FixedVertices::all_free(24);
        let balance = BalanceConstraint::bisection(24, Tolerance::Relative(0.1));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let r = engine
                .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
                .unwrap();
            let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
            assert!(
                validate_partitioning(&hg, &p, &balance, &fixed).is_valid(),
                "{} produced an invalid bisection",
                info.name
            );
            assert!(
                r.cut <= 5,
                "{}: cut {} far from optimal 1",
                info.name,
                r.cut
            );
        }
    }

    #[test]
    fn kway_engines_partition_four_ways_and_bipart_engines_refuse() {
        let hg = chain(32);
        let fixed = FixedVertices::all_free(32);
        let balance = BalanceConstraint::even(4, &[32], Tolerance::Relative(0.2));
        for name in ["rb", "kway"] {
            let engine = EngineConfig::by_name(name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let r = engine
                .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
                .unwrap();
            let p = Partitioning::from_parts(&hg, 4, r.parts).unwrap();
            assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
        }
        for name in ["fm", "ml", "kl", "sa"] {
            let engine = EngineConfig::by_name(name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            assert!(
                matches!(
                    engine.partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng)),
                    Err(PartitionError::UnsupportedPartCount { .. })
                ),
                "{name} should refuse 4-way"
            );
        }
    }

    #[test]
    fn engines_honour_fixed_vertices() {
        let hg = chain(20);
        let mut fixed = FixedVertices::all_free(20);
        fixed.fix(VertexId(0), PartId(1));
        fixed.fix(VertexId(19), PartId(0));
        let balance = BalanceConstraint::bisection(20, Tolerance::Relative(0.1));
        for info in ENGINES {
            let engine = EngineConfig::by_name(info.name).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let r = engine
                .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
                .unwrap();
            assert_eq!(r.parts[0], PartId(1), "{}", info.name);
            assert_eq!(r.parts[19], PartId(0), "{}", info.name);
        }
    }

    #[test]
    fn refiners_never_worsen_and_respect_fixities() {
        let hg = chain(24);
        let mut fixed = FixedVertices::all_free(24);
        fixed.fix(VertexId(5), PartId(0));
        let balance = BalanceConstraint::bisection(24, Tolerance::Relative(0.1));
        // A deliberately bad interleaved start (consistent with the fixity).
        let mut initial: Vec<PartId> = (0..24).map(|i| PartId(i % 2)).collect();
        initial[5] = PartId(0);
        initial[6] = PartId(1);
        let start_cut = Partitioning::from_parts(&hg, 2, initial.clone())
            .unwrap()
            .cut_value(Objective::Cut);

        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fm = BipartFm::new(FmConfig::default());
        let stack = FmStack::from_multilevel(&MultilevelConfig::default());
        let kw = KwayRefiner::default();
        let results = [
            fm.refine_ctx(
                &hg,
                &fixed,
                &balance,
                initial.clone(),
                RunCtx::new(&mut rng),
            )
            .unwrap(),
            stack
                .refine_ctx(
                    &hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    RunCtx::new(&mut rng),
                )
                .unwrap(),
            kw.refine_ctx(
                &hg,
                &fixed,
                &balance,
                initial.clone(),
                RunCtx::new(&mut rng),
            )
            .unwrap(),
        ];
        for r in &results {
            assert!(r.cut <= start_cut);
            assert_eq!(r.parts[5], PartId(0));
        }
    }

    #[test]
    fn rb_engine_skips_cleanup_when_disabled() {
        let hg = chain(16);
        let fixed = FixedVertices::all_free(16);
        let balance = BalanceConstraint::even(4, &[16], Tolerance::Relative(0.3));
        let cfg = KwayConfig {
            refine_passes: 0,
            ..KwayConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = RecursiveBisection(cfg)
            .partition_ctx(&hg, &fixed, &balance, RunCtx::new(&mut rng))
            .unwrap();
        let p = Partitioning::from_parts(&hg, 4, r.parts).unwrap();
        assert_eq!(p.cut_value(Objective::Cut), r.cut);
    }

    #[test]
    fn runctx_reborrow_supports_sequential_calls() {
        let hg = chain(16);
        let fixed = FixedVertices::all_free(16);
        let balance = BalanceConstraint::bisection(16, Tolerance::Relative(0.1));
        let engine = EngineConfig::by_name("fm").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut ctx = RunCtx::new(&mut rng).with_threads(2);
        let a = engine
            .partition_ctx(&hg, &fixed, &balance, ctx.reborrow())
            .unwrap();
        let b = engine
            .partition_ctx(&hg, &fixed, &balance, ctx.reborrow())
            .unwrap();
        // The RNG advanced between the calls; both are legal bisections.
        for r in [&a, &b] {
            let p = Partitioning::from_parts(&hg, 2, r.parts.clone()).unwrap();
            assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
        }
    }
}
