//! Simulated-annealing bipartitioning — a second classical baseline.
//!
//! Moves flip one movable vertex at a time; downhill moves are always
//! accepted, uphill moves with probability `exp(−Δ/T)`; the temperature
//! cools geometrically per sweep. The best *balanced* state seen is
//! returned (as with the FM engine, the walk itself may transiently
//! overshoot the balance window by one vertex weight).
//!
//! Fixed vertices are never proposed; `FixedAny` vertices flip only within
//! their allowed set (in a bisection: both sides).

use vlsi_rng::Rng;

use vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, Hypergraph, Objective, PartId, Partitioning, VertexId,
};
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::{PartitionError, PartitionResult};

/// Configuration of the annealer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingConfig {
    /// Number of sweeps (each sweep proposes `movable` flips).
    pub sweeps: usize,
    /// Geometric cooling factor per sweep.
    pub cooling: f64,
    /// Initial temperature; `None` = calibrate from the mean uphill delta
    /// of a sampling prepass.
    pub initial_temperature: Option<f64>,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            sweeps: 60,
            cooling: 0.92,
            initial_temperature: None,
        }
    }
}

/// Runs simulated annealing from the given initial assignment.
///
/// # Errors
/// * [`PartitionError::UnsupportedPartCount`] unless `balance` is 2-way.
/// * [`PartitionError::Input`] for inconsistent initial assignments.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, PartId, Tolerance};
/// use vlsi_partition::annealing::{simulated_annealing, AnnealingConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..8).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let fixed = FixedVertices::all_free(8);
/// let balance = BalanceConstraint::bisection(8, Tolerance::Relative(0.0));
/// let initial: Vec<PartId> = (0..8).map(|i| PartId(i % 2)).collect();
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
/// let r = simulated_annealing(
///     &hg, &fixed, &balance, initial, AnnealingConfig::default(), &mut rng,
/// )?;
/// assert!(r.cut <= 3); // far better than the interleaved start (7)
/// # Ok(())
/// # }
/// ```
pub fn simulated_annealing<R: Rng + ?Sized>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: AnnealingConfig,
    rng: &mut R,
) -> Result<PartitionResult, PartitionError> {
    simulated_annealing_with_sink(hg, fixed, balance, initial, config, rng, &NullSink)
}

/// Like [`simulated_annealing`], emitting one [`Event::SweepFinished`] per
/// sweep (accepted-flip count, current and best cut).
///
/// # Errors
/// Same as [`simulated_annealing`].
pub fn simulated_annealing_with_sink<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: AnnealingConfig,
    rng: &mut R,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    simulated_annealing_cancellable(
        hg,
        fixed,
        balance,
        initial,
        config,
        rng,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`simulated_annealing_with_sink`], additionally polling `cancel` at
/// sweep boundaries and every [`CHECK_INTERVAL`] proposals. A cancelled run
/// records one [`Event::Cancelled`] (stage `sweep`) and returns the best
/// balanced state visited so far.
///
/// # Errors
/// Same as [`simulated_annealing`].
#[allow(clippy::too_many_arguments)]
pub fn simulated_annealing_cancellable<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: AnnealingConfig,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    if balance.num_parts() != 2 {
        return Err(PartitionError::UnsupportedPartCount {
            requested: balance.num_parts(),
            supported: 2,
        });
    }
    let mut p = Partitioning::from_parts_fixed(hg, 2, initial, fixed)?;
    let movable: Vec<VertexId> = hg
        .vertices()
        .filter(|&v| {
            let f = if v.index() < fixed.len() {
                fixed.fixity(v)
            } else {
                Fixity::Free
            };
            f.allows(PartId(0)) && f.allows(PartId(1))
        })
        .collect();
    if movable.is_empty() {
        let cut = p.cut_value(Objective::Cut);
        return Ok(PartitionResult::new(p.into_parts(), cut));
    }

    let nr = hg.num_resources();
    let mut relax = vec![0u64; nr];
    for &v in &movable {
        for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
            relax[r] = relax[r].max(w);
        }
    }
    let flip_allowed = |p: &Partitioning, v: VertexId| -> bool {
        let to = p.part_of(v).other_side();
        let ws = hg.vertex_weights(v);
        (0..nr).all(|r| p.loads()[to.index() * nr + r] + ws[r] <= balance.max(to, r) + relax[r])
    };

    /// Cut delta of flipping `v` (positive = cut increases).
    fn flip_delta(hg: &Hypergraph, p: &Partitioning, v: VertexId) -> i64 {
        let from = p.part_of(v);
        let to = from.other_side();
        let cs = p.cut_state();
        let mut delta = 0i64;
        for &n in hg.vertex_nets(v) {
            let w = hg.net_weight(n) as i64;
            if cs.pins_in(n, from) == 1 {
                delta -= w;
            }
            if cs.pins_in(n, to) == 0 {
                delta += w;
            }
        }
        delta
    }

    // Calibrate the initial temperature from sampled uphill deltas.
    let mut temperature = config.initial_temperature.unwrap_or_else(|| {
        let mut sum = 0.0;
        let mut count = 0usize;
        for _ in 0..movable.len().min(200) {
            let v = movable[rng.gen_range(0..movable.len())];
            let d = flip_delta(hg, &p, v);
            if d > 0 {
                sum += d as f64;
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            2.0 * sum / count as f64
        }
    });

    let mut best_parts: Option<Vec<PartId>> = None;
    let mut best_cut = u64::MAX;
    if balance.is_satisfied(p.loads()) {
        best_cut = p.cut_value(Objective::Cut);
        best_parts = Some(p.as_slice().to_vec());
    }

    'sweeps: for sweep in 0..config.sweeps {
        if cancel.is_cancelled() {
            break;
        }
        let mut accepted = 0u64;
        for proposal in 0..movable.len() {
            if !cancel.is_never()
                && proposal.is_multiple_of(CHECK_INTERVAL)
                && cancel.is_cancelled()
            {
                break 'sweeps;
            }
            let v = movable[rng.gen_range(0..movable.len())];
            if !flip_allowed(&p, v) {
                continue;
            }
            let delta = flip_delta(hg, &p, v);
            let accept = delta <= 0
                || rng.gen_bool((-(delta as f64) / temperature.max(1e-9)).exp().min(1.0));
            if accept {
                let to = p.part_of(v).other_side();
                p.move_vertex(hg, v, to);
                if S::ENABLED {
                    accepted += 1;
                }
                let cut = p.cut_value(Objective::Cut);
                if cut < best_cut && balance.is_satisfied(p.loads()) {
                    best_cut = cut;
                    best_parts = Some(p.as_slice().to_vec());
                }
            }
        }
        temperature *= config.cooling;
        if S::ENABLED {
            sink.record(&Event::SweepFinished {
                sweep: sweep as u32,
                accepted,
                cut: p.cut_value(Objective::Cut),
                best_cut: if best_cut == u64::MAX {
                    p.cut_value(Objective::Cut)
                } else {
                    best_cut
                },
            });
        }
    }

    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::Sweep,
            value: if best_cut == u64::MAX {
                p.cut_value(Objective::Cut)
            } else {
                best_cut
            },
        });
    }

    match best_parts {
        Some(parts) => Ok(PartitionResult::new(parts, best_cut)),
        None => {
            // The walk never visited a balanced state; return the final one
            // (callers starting from a legal assignment never hit this).
            let cut = p.cut_value(Objective::Cut);
            Ok(PartitionResult::new(p.into_parts(), cut))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{validate_partitioning, HypergraphBuilder, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn two_cliques(s: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2 * s).map(|_| b.add_vertex(1)).collect();
        for base in [0, s] {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_net(1, [v[base + i], v[base + j]]).unwrap();
                }
            }
        }
        b.add_net(1, [v[0], v[s]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn anneals_to_the_natural_bisection() {
        let hg = two_cliques(5);
        let fixed = FixedVertices::all_free(10);
        let balance = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..10).map(|i| PartId(i % 2)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let r = simulated_annealing(
            &hg,
            &fixed,
            &balance,
            initial,
            AnnealingConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.cut, 1);
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
    }

    #[test]
    fn respects_fixed_vertices() {
        let hg = two_cliques(4);
        let mut fixed = FixedVertices::all_free(8);
        fixed.fix(VertexId(0), PartId(1));
        let balance = BalanceConstraint::bisection(8, Tolerance::Relative(0.3));
        let mut initial: Vec<PartId> = (0..8).map(|i| PartId(u32::from(i >= 4))).collect();
        initial[0] = PartId(1);
        initial[4] = PartId(0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = simulated_annealing(
            &hg,
            &fixed,
            &balance,
            initial,
            AnnealingConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.parts[0], PartId(1));
    }

    #[test]
    fn fully_fixed_instance_is_identity() {
        let hg = two_cliques(3);
        let mut fixed = FixedVertices::all_free(6);
        for i in 0..6 {
            fixed.fix(VertexId(i), PartId(i % 2));
        }
        let initial: Vec<PartId> = (0..6).map(|i| PartId(i % 2)).collect();
        let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.5));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let r = simulated_annealing(
            &hg,
            &fixed,
            &balance,
            initial.clone(),
            AnnealingConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.parts, initial);
    }

    #[test]
    fn rejects_multiway() {
        let hg = two_cliques(3);
        let fixed = FixedVertices::all_free(6);
        let balance = BalanceConstraint::even(3, &[6], Tolerance::Relative(0.5));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(matches!(
            simulated_annealing(
                &hg,
                &fixed,
                &balance,
                vec![PartId(0); 6],
                AnnealingConfig::default(),
                &mut rng,
            ),
            Err(PartitionError::UnsupportedPartCount { .. })
        ));
    }

    #[test]
    fn explicit_temperature_accepted() {
        let hg = two_cliques(4);
        let fixed = FixedVertices::all_free(8);
        let balance = BalanceConstraint::bisection(8, Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..8).map(|i| PartId(i % 2)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = AnnealingConfig {
            initial_temperature: Some(0.5),
            sweeps: 30,
            ..AnnealingConfig::default()
        };
        let r = simulated_annealing(&hg, &fixed, &balance, initial, cfg, &mut rng).unwrap();
        assert!(r.cut <= 4);
    }
}
