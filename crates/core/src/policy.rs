//! Practical tuning guidelines distilled from the paper's findings.
//!
//! Section II: "In all of our experiments, an instance with 20% or more
//! vertices fixed is essentially solvable to very high quality in one or
//! two starts, i.e., further starts are unnecessary." Section III: pass
//! cutoffs are safe (and fast) once terminals are sufficient, harmful on
//! free hypergraphs. These functions encode that guidance so a caller in
//! the top-down-placement context can spend effort where it pays.

use crate::config::{FmConfig, PassCutoff};

/// Recommended number of multilevel starts as a function of the instance's
/// fixed-vertex fraction (`0.0..=1.0`).
///
/// # Panics
/// Panics if `fixed_fraction` is outside `[0, 1]`.
///
/// # Example
/// ```
/// use vlsi_partition::policy::recommended_starts;
/// assert_eq!(recommended_starts(0.0), 8);   // free hypergraph: multistart pays
/// assert_eq!(recommended_starts(0.10), 4);
/// assert_eq!(recommended_starts(0.25), 2);  // the paper's "one or two starts"
/// assert_eq!(recommended_starts(0.50), 1);
/// ```
pub fn recommended_starts(fixed_fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&fixed_fraction),
        "fixed fraction must be in [0, 1]"
    );
    match fixed_fraction {
        f if f >= 0.40 => 1,
        f if f >= 0.20 => 2,
        f if f >= 0.05 => 4,
        _ => 8,
    }
}

/// Recommended FM pass cutoff as a function of the fixed fraction: no
/// cutoff on (nearly) free hypergraphs — where Table III shows quality
/// loss — and increasingly aggressive cutoffs as terminals accumulate,
/// where Table III shows pure runtime savings.
///
/// # Panics
/// Panics if `fixed_fraction` is outside `[0, 1]`.
///
/// # Example
/// ```
/// use vlsi_partition::policy::recommended_cutoff;
/// use vlsi_partition::PassCutoff;
/// assert_eq!(recommended_cutoff(0.0), PassCutoff::Unlimited);
/// assert_eq!(recommended_cutoff(0.30), PassCutoff::Fraction(0.25));
/// assert_eq!(recommended_cutoff(0.60), PassCutoff::Fraction(0.10));
/// ```
pub fn recommended_cutoff(fixed_fraction: f64) -> PassCutoff {
    assert!(
        (0.0..=1.0).contains(&fixed_fraction),
        "fixed fraction must be in [0, 1]"
    );
    match fixed_fraction {
        f if f >= 0.50 => PassCutoff::Fraction(0.10),
        f if f >= 0.20 => PassCutoff::Fraction(0.25),
        f if f >= 0.10 => PassCutoff::Fraction(0.50),
        _ => PassCutoff::Unlimited,
    }
}

/// A flat-FM configuration tuned to the instance's fixed fraction: LIFO
/// selection with the recommended pass cutoff.
///
/// # Example
/// ```
/// use vlsi_partition::policy::tuned_fm_config;
/// use vlsi_partition::PassCutoff;
/// let cfg = tuned_fm_config(0.35);
/// assert_eq!(cfg.cutoff, PassCutoff::Fraction(0.25));
/// assert!(!cfg.cutoff_first_pass); // the first pass is always exempt
/// ```
pub fn tuned_fm_config(fixed_fraction: f64) -> FmConfig {
    FmConfig {
        cutoff: recommended_cutoff(fixed_fraction),
        ..FmConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_monotonically_fall_with_fixing() {
        let mut prev = usize::MAX;
        for f in [0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.60, 1.0] {
            let s = recommended_starts(f);
            assert!(s <= prev, "starts must not rise with fixing");
            assert!(s >= 1);
            prev = s;
        }
    }

    #[test]
    fn cutoff_tightens_with_fixing() {
        let frac = |c: PassCutoff| match c {
            PassCutoff::Unlimited => 1.0,
            PassCutoff::Fraction(f) => f,
            PassCutoff::Moves(_) => unreachable!("policy never emits Moves"),
        };
        let mut prev = f64::INFINITY;
        for f in [0.0, 0.10, 0.20, 0.50, 1.0] {
            let c = frac(recommended_cutoff(f));
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "fixed fraction")]
    fn rejects_bad_fraction() {
        let _ = recommended_starts(1.5);
    }

    #[test]
    fn tuned_config_defaults() {
        let cfg = tuned_fm_config(0.0);
        assert_eq!(cfg.cutoff, PassCutoff::Unlimited);
        assert_eq!(cfg.max_passes, FmConfig::default().max_passes);
    }
}
