//! Heavy-edge-matching coarsening with fixity-aware cluster merging.

use std::collections::HashMap;

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::Rng;

use vlsi_hypergraph::{
    FixedVertices, Fixity, Hypergraph, HypergraphBuilder, NetId, PartId, VertexId,
};

/// Minimum vertices per worker before match scoring forks threads.
const MATCH_GRAIN: usize = 512;
/// Minimum nets per worker before contraction forks threads.
const NET_GRAIN: usize = 1024;

/// One coarsening level: the coarse hypergraph, its fixities, and the map
/// from fine vertex to coarse vertex.
#[derive(Debug, Clone)]
pub struct Level {
    /// The coarse hypergraph.
    pub hg: Hypergraph,
    /// Fixities of the coarse vertices (merged from the fine fixities).
    pub fixed: FixedVertices,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<VertexId>,
}

impl Level {
    /// Projects a coarse partition assignment back to the fine vertex set.
    pub fn project(&self, coarse_parts: &[PartId]) -> Vec<PartId> {
        self.map.iter().map(|m| coarse_parts[m.index()]).collect()
    }
}

/// Tuning knobs for one coarsening step.
#[derive(Debug, Clone)]
pub struct CoarsenParams {
    /// Maximum primary weight of a cluster.
    pub max_cluster_weight: u64,
    /// Per-resource caps on cluster weight vectors — the heavy-vertex
    /// guard for multi-dimensional weights ("Vertex Weights Revisited":
    /// a cluster that concentrates one scarce resource can make the
    /// coarse instance unbalanceable even when its primary weight is
    /// fine). Checked component-wise in addition to
    /// `max_cluster_weight`; dimensions beyond the vector's length are
    /// unconstrained. Empty = scalar guard only (the single-resource
    /// behavior, kept bit-for-bit).
    pub max_cluster_weights: Vec<u64>,
    /// Nets larger than this are ignored when scoring matches (they carry
    /// almost no signal and make matching quadratic).
    pub max_net_size_for_matching: usize,
    /// Per-partition cap on the total primary weight of vertices whose
    /// cluster ends up `Fixed` in that partition. Without this cap, free
    /// vertices merging into fixed clusters could make a partition's fixed
    /// weight alone exceed its balance capacity, rendering the coarse
    /// instance infeasible. Empty = unlimited.
    pub max_fixed_part_weight: Vec<u64>,
    /// When `false` (the default used by the multilevel engine), a free
    /// vertex never merges with a fixed one: gluing free cells onto
    /// terminals at coarse levels pre-decides their side before refinement
    /// can judge, which measurably degrades cut quality in the
    /// fixed-terminals regime. Fixed–fixed merges within one partition are
    /// always allowed (the terminal-clustering equivalence).
    pub allow_free_fixed_merge: bool,
    /// Worker-thread budget for match scoring and net contraction. Purely
    /// a speed knob: the parallel phases compute exactly what the
    /// sequential code would (see [`crate::parallel`]), so the coarse
    /// level is byte-identical for every value. `0` and `1` both mean
    /// single-threaded.
    pub threads: usize,
}

/// Merges two fixities; `None` when the vertices may not share a cluster.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{Fixity, PartId, PartSet};
/// use vlsi_partition::multilevel::merge_fixity;
///
/// assert_eq!(
///     merge_fixity(Fixity::Free, Fixity::Fixed(PartId(1))),
///     Some(Fixity::Fixed(PartId(1)))
/// );
/// assert_eq!(
///     merge_fixity(Fixity::Fixed(PartId(0)), Fixity::Fixed(PartId(1))),
///     None
/// );
/// let s01 = PartSet::all(2);
/// assert_eq!(
///     merge_fixity(Fixity::FixedAny(s01), Fixity::Fixed(PartId(1))),
///     Some(Fixity::Fixed(PartId(1)))
/// );
/// ```
pub fn merge_fixity(a: Fixity, b: Fixity) -> Option<Fixity> {
    use Fixity::*;
    match (a, b) {
        (Free, x) | (x, Free) => Some(x),
        (Fixed(p), Fixed(q)) => (p == q).then_some(Fixed(p)),
        (Fixed(p), FixedAny(s)) | (FixedAny(s), Fixed(p)) => s.contains(p).then_some(Fixed(p)),
        (FixedAny(s), FixedAny(t)) => {
            let i = s.intersection(t);
            match i.len() {
                0 => None,
                1 => Some(Fixed(i.iter().next().expect("len 1"))),
                _ => Some(FixedAny(i)),
            }
        }
    }
}

/// Performs one heavy-edge-matching coarsening step.
///
/// Vertices are visited in random order; each unmatched vertex is paired
/// with the unmatched neighbour maximising the standard hypergraph
/// heavy-edge score `Σ w(n) / (|n| − 1)` over shared nets, subject to the
/// cluster-weight cap and fixity compatibility. When `same_part` is given
/// (V-cycling), only vertices currently in the same partition may merge.
///
/// Returns `None` if matching failed to shrink the graph below
/// `min_shrink × |V|` (a stall).
pub fn coarsen_once<R: Rng + ?Sized>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    params: &CoarsenParams,
    min_shrink: f64,
    same_part: Option<&[PartId]>,
    rng: &mut R,
) -> Option<Level> {
    let n = hg.num_vertices();
    let mut order: Vec<VertexId> = hg.vertices().collect();
    order.shuffle(rng);

    const UNMATCHED: u32 = u32::MAX;
    let mut partner = vec![UNMATCHED; n];
    let mut num_clusters = 0usize;
    let mut cluster_of = vec![UNMATCHED; n];

    // Running total of weight fixed into each partition (seeded by the
    // vertices that are already Fixed).
    let budget = &params.max_fixed_part_weight;
    let mut fixed_weight: Vec<u64> = vec![0; budget.len()];
    if !budget.is_empty() {
        for v in hg.vertices() {
            if let Fixity::Fixed(p) = fixed.fixity(v) {
                if p.index() < fixed_weight.len() {
                    fixed_weight[p.index()] += hg.vertex_weight(v);
                }
            }
        }
    }

    // Pre-pass: vertices fixed in the same partition are interchangeable to
    // every downstream engine (they can never move), so group them into
    // clusters up to the weight cap — the paper's terminal-clustering
    // equivalence, applied per level. This keeps coarsening shrinking even
    // when half the graph is terminals. (Skipped in the free-fixed-merge
    // ablation mode, where fixed vertices stay available for matching.)
    if !params.allow_free_fixed_merge {
        // part -> (cluster, primary weight, per-resource weights)
        let mut bin_cluster: HashMap<u32, (u32, u64, Vec<u64>)> = HashMap::new();
        for &v in &order {
            let Fixity::Fixed(p) = fixed.fixity(v) else {
                continue;
            };
            let w = hg.vertex_weight(v);
            match bin_cluster.get_mut(&p.0) {
                Some((cluster, bw, bws))
                    if *bw + w <= params.max_cluster_weight
                        && within_resource_caps(
                            bws,
                            hg.vertex_weights(v),
                            &params.max_cluster_weights,
                        ) =>
                {
                    cluster_of[v.index()] = *cluster;
                    partner[v.index()] = v.0;
                    *bw += w;
                    for (a, &b) in bws.iter_mut().zip(hg.vertex_weights(v)) {
                        *a += b;
                    }
                }
                _ => {
                    let cluster = num_clusters as u32;
                    num_clusters += 1;
                    cluster_of[v.index()] = cluster;
                    partner[v.index()] = v.0;
                    bin_cluster.insert(p.0, (cluster, w, hg.vertex_weights(v).to_vec()));
                }
            }
        }
    }

    let match_workers = crate::parallel::effective_threads(params.threads, n, MATCH_GRAIN);
    if match_workers > 1 {
        // Phase 1 (parallel): candidate scoring. A candidate's heavy-edge
        // score is a pure function of the nets it shares with `v` (the
        // match state only decides *whether* a vertex is still a
        // candidate, never its score), so every state-independent filter
        // and the full score sum — accumulated in `v`'s net order, hence
        // bit-identical to the sequential f64 sum — can run sharded over
        // vertex ranges. Vertices matched by the terminal pre-pass are
        // matched permanently, so the snapshot of `partner` taken here is
        // exact for them; later greedy matches are filtered in phase 2.
        let partner_snapshot = &partner;
        let chunks = crate::parallel::par_map_chunks(n, match_workers, |range| {
            let mut out: Vec<Vec<(f64, u32)>> = Vec::with_capacity(range.len());
            let mut scores: HashMap<u32, f64> = HashMap::new();
            for vi in range {
                let v = VertexId(vi as u32);
                if partner_snapshot[vi] != UNMATCHED {
                    out.push(Vec::new());
                    continue;
                }
                scores.clear();
                for &net in hg.vertex_nets(v) {
                    let size = hg.net_size(net);
                    if size < 2 || size > params.max_net_size_for_matching {
                        continue;
                    }
                    let s = hg.net_weight(net) as f64 / (size as f64 - 1.0);
                    for &u in hg.net_pins(net) {
                        if u != v && partner_snapshot[u.index()] == UNMATCHED {
                            *scores.entry(u.0).or_insert(0.0) += s;
                        }
                    }
                }
                let vw = hg.vertex_weight(v);
                let vfix = fixed.fixity(v);
                let mut list: Vec<(f64, u32)> = Vec::with_capacity(scores.len());
                for (&u_raw, &score) in &scores {
                    let u = VertexId(u_raw);
                    if vw + hg.vertex_weight(u) > params.max_cluster_weight {
                        continue;
                    }
                    if !within_resource_caps(
                        hg.vertex_weights(v),
                        hg.vertex_weights(u),
                        &params.max_cluster_weights,
                    ) {
                        continue;
                    }
                    let ufix = fixed.fixity(u);
                    if !params.allow_free_fixed_merge && vfix.is_fixed() != ufix.is_fixed() {
                        continue;
                    }
                    if merge_fixity(vfix, ufix).is_none() {
                        continue;
                    }
                    if let Some(parts) = same_part {
                        if parts[v.index()] != parts[u.index()] {
                            continue;
                        }
                    }
                    list.push((score, u_raw));
                }
                // Descending (score, id): the order the sequential argmax
                // induces; `(f64, u32)` pairs are unique per candidate.
                list.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
                out.push(list);
            }
            out
        });
        let candidates: Vec<Vec<(f64, u32)>> = chunks.into_iter().flatten().collect();

        // Phase 2 (sequential): replay the greedy resolution in the
        // shuffled visit order, applying the two state-dependent checks —
        // "still unmatched" and the fixed-weight budget — against the
        // exact state the sequential loop would see. Taking the first
        // surviving entry of the sorted list equals the sequential argmax.
        for &v in &order {
            if partner[v.index()] != UNMATCHED {
                continue;
            }
            let vw = hg.vertex_weight(v);
            let vfix = fixed.fixity(v);
            let mut best: Option<VertexId> = None;
            for &(_, u_raw) in &candidates[v.index()] {
                let u = VertexId(u_raw);
                if partner[u.index()] != UNMATCHED {
                    continue;
                }
                if let Some(Fixity::Fixed(p)) = merge_fixity(vfix, fixed.fixity(u)) {
                    if p.index() < fixed_weight.len() {
                        let added = fixed_delta(vfix, p, vw)
                            + fixed_delta(fixed.fixity(u), p, hg.vertex_weight(u));
                        if fixed_weight[p.index()] + added > budget[p.index()] {
                            continue;
                        }
                    }
                }
                best = Some(u);
                break;
            }
            if let Some(u) = best {
                if let Some(Fixity::Fixed(p)) = merge_fixity(vfix, fixed.fixity(u)) {
                    if p.index() < fixed_weight.len() {
                        fixed_weight[p.index()] += fixed_delta(vfix, p, vw)
                            + fixed_delta(fixed.fixity(u), p, hg.vertex_weight(u));
                    }
                }
                partner[v.index()] = u.0;
                partner[u.index()] = v.0;
                cluster_of[v.index()] = num_clusters as u32;
                cluster_of[u.index()] = num_clusters as u32;
                num_clusters += 1;
            } else {
                partner[v.index()] = v.0; // matched with itself
                cluster_of[v.index()] = num_clusters as u32;
                num_clusters += 1;
            }
        }
    } else {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for &v in &order {
            if partner[v.index()] != UNMATCHED {
                continue;
            }
            scores.clear();
            for &net in hg.vertex_nets(v) {
                let size = hg.net_size(net);
                if size < 2 || size > params.max_net_size_for_matching {
                    continue;
                }
                let s = hg.net_weight(net) as f64 / (size as f64 - 1.0);
                for &u in hg.net_pins(net) {
                    if u != v && partner[u.index()] == UNMATCHED {
                        *scores.entry(u.0).or_insert(0.0) += s;
                    }
                }
            }
            let vw = hg.vertex_weight(v);
            let vfix = fixed.fixity(v);
            let mut best: Option<(f64, VertexId)> = None;
            for (&u_raw, &score) in &scores {
                let u = VertexId(u_raw);
                if vw + hg.vertex_weight(u) > params.max_cluster_weight {
                    continue;
                }
                if !within_resource_caps(
                    hg.vertex_weights(v),
                    hg.vertex_weights(u),
                    &params.max_cluster_weights,
                ) {
                    continue;
                }
                let ufix = fixed.fixity(u);
                if !params.allow_free_fixed_merge && vfix.is_fixed() != ufix.is_fixed() {
                    continue;
                }
                let Some(merged) = merge_fixity(vfix, ufix) else {
                    continue;
                };
                if let Fixity::Fixed(p) = merged {
                    if p.index() < fixed_weight.len() {
                        let added = fixed_delta(vfix, p, vw)
                            + fixed_delta(fixed.fixity(u), p, hg.vertex_weight(u));
                        if fixed_weight[p.index()] + added > budget[p.index()] {
                            continue;
                        }
                    }
                }
                if let Some(parts) = same_part {
                    if parts[v.index()] != parts[u.index()] {
                        continue;
                    }
                }
                match best {
                    Some((bs, bu)) if (bs, bu.0) >= (score, u.0) => {}
                    _ => best = Some((score, u)),
                }
            }
            if let Some((_, u)) = best {
                if let Some(Fixity::Fixed(p)) = merge_fixity(vfix, fixed.fixity(u)) {
                    if p.index() < fixed_weight.len() {
                        fixed_weight[p.index()] += fixed_delta(vfix, p, vw)
                            + fixed_delta(fixed.fixity(u), p, hg.vertex_weight(u));
                    }
                }
                partner[v.index()] = u.0;
                partner[u.index()] = v.0;
                cluster_of[v.index()] = num_clusters as u32;
                cluster_of[u.index()] = num_clusters as u32;
                num_clusters += 1;
            } else {
                partner[v.index()] = v.0; // matched with itself
                cluster_of[v.index()] = num_clusters as u32;
                num_clusters += 1;
            }
        }
    }

    if (num_clusters as f64) > min_shrink * n as f64 {
        return None;
    }

    Some(contract_clusters(
        hg,
        fixed,
        cluster_of,
        num_clusters,
        params.threads,
    ))
}

/// Contracts an explicit clustering into a coarse [`Level`].
///
/// This is the coarse-graph-construction tail shared by heavy-edge
/// matching ([`coarsen_once`]) and the ensemble-recombination layer
/// (which force-coarsens agreement clusters): cluster weight vectors are
/// summed, fixities merged (panics if a cluster holds incompatible
/// fixities — callers must pre-check with [`merge_fixity`]), and nets are
/// mapped, deduplicated and merged by the sort-based span scheme, so the
/// coarse net list is deterministic and thread-count invariant.
///
/// `cluster_of[v]` must be a dense id in `0..num_clusters`.
pub fn contract_clusters(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    cluster_of: Vec<u32>,
    num_clusters: usize,
    threads: usize,
) -> Level {
    // Build the coarse hypergraph.
    let nr = hg.num_resources();
    let mut weights = vec![0u64; num_clusters * nr];
    let mut fixities = vec![Fixity::Free; num_clusters];
    for v in hg.vertices() {
        let c = cluster_of[v.index()] as usize;
        for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
            weights[c * nr + r] += w;
        }
        fixities[c] = merge_fixity(fixities[c], fixed.fixity(v))
            .expect("matching produced incompatible fixities");
    }

    let mut builder = HypergraphBuilder::with_resources(nr);
    for c in 0..num_clusters {
        builder
            .add_vertex_multi(&weights[c * nr..(c + 1) * nr])
            .expect("arity matches");
    }

    // Map, dedup and merge nets: identical coarse pin sets sum weights.
    //
    // Sort-based dedup over two flat arenas instead of a
    // `HashMap<Vec<u32>, u64>`: every net's mapped pins are normalized
    // (sorted, internally deduped) in place at the tail of one shared pin
    // arena, with a `(offset, len, weight)` span per surviving net in the
    // second arena — no per-net key allocation, no hashing. Sorting the
    // spans lexicographically by pin slice brings identical coarse nets
    // adjacent; one merge pass sums their weights. u64 weight addition is
    // order-independent and the emitted nets come out in the same
    // lexicographic order the old `merged.sort_unstable()` produced, so
    // the coarse net list is byte-identical to the HashMap version — and
    // thread-count invariant: with a thread budget the normalize pass is
    // sharded and the shard arenas concatenate before the same global
    // sort-merge.
    let net_workers = crate::parallel::effective_threads(threads, hg.num_nets(), NET_GRAIN);
    let normalize = |range: std::ops::Range<usize>,
                     pin_arena: &mut Vec<u32>,
                     spans: &mut Vec<(u32, u32, u64)>| {
        for ni in range {
            let net = NetId(ni as u32);
            let start = pin_arena.len();
            pin_arena.extend(hg.net_pins(net).iter().map(|&p| cluster_of[p.index()]));
            pin_arena[start..].sort_unstable();
            // In-place dedup of the tail written for this net.
            let mut w = start + 1;
            for r in start + 1..pin_arena.len() {
                if pin_arena[r] != pin_arena[w - 1] {
                    pin_arena[w] = pin_arena[r];
                    w += 1;
                }
            }
            pin_arena.truncate(w);
            if w - start < 2 {
                pin_arena.truncate(start); // internal to one cluster: can never be cut
                continue;
            }
            spans.push((start as u32, (w - start) as u32, hg.net_weight(net)));
        }
    };
    let mut pin_arena: Vec<u32>;
    let mut spans: Vec<(u32, u32, u64)>;
    if net_workers > 1 {
        let shards = crate::parallel::par_map_chunks(hg.num_nets(), net_workers, |range| {
            let mut local_pins: Vec<u32> = Vec::new();
            let mut local_spans: Vec<(u32, u32, u64)> = Vec::new();
            normalize(range, &mut local_pins, &mut local_spans);
            (local_pins, local_spans)
        });
        pin_arena = Vec::with_capacity(shards.iter().map(|(p, _)| p.len()).sum());
        spans = Vec::with_capacity(shards.iter().map(|(_, s)| s.len()).sum());
        for (local_pins, local_spans) in shards {
            let base = pin_arena.len() as u32;
            pin_arena.extend_from_slice(&local_pins);
            spans.extend(
                local_spans
                    .into_iter()
                    .map(|(off, len, w)| (base + off, len, w)),
            );
        }
    } else {
        pin_arena = Vec::with_capacity(hg.num_pins());
        spans = Vec::with_capacity(hg.num_nets());
        normalize(0..hg.num_nets(), &mut pin_arena, &mut spans);
    }

    let pin_slice = |s: &(u32, u32, u64)| &pin_arena[s.0 as usize..(s.0 + s.1) as usize];
    spans.sort_unstable_by(|a, b| pin_slice(a).cmp(pin_slice(b)));
    let mut i = 0;
    while i < spans.len() {
        let key = pin_slice(&spans[i]);
        let mut weight = spans[i].2;
        let mut j = i + 1;
        while j < spans.len() && pin_slice(&spans[j]) == key {
            weight += spans[j].2;
            j += 1;
        }
        builder
            .add_net(weight, key.iter().copied().map(VertexId))
            .expect("valid coarse net");
        i = j;
    }

    Level {
        hg: builder.build().expect("valid coarse hypergraph"),
        fixed: FixedVertices::from_fixities(fixities),
        map: cluster_of.into_iter().map(VertexId).collect(),
    }
}

/// Component-wise heavy-vertex guard: `true` when `acc + add` stays within
/// the per-resource caps. Dimensions past `caps.len()` are unconstrained;
/// an empty `caps` accepts everything (the scalar-only legacy regime).
pub(crate) fn within_resource_caps(acc: &[u64], add: &[u64], caps: &[u64]) -> bool {
    caps.iter()
        .zip(acc.iter().zip(add))
        .all(|(&c, (&a, &b))| a.saturating_add(b) <= c)
}

/// Weight newly counted toward partition `p`'s fixed pool when a vertex
/// with fixity `f` and weight `w` joins a `Fixed(p)` cluster.
fn fixed_delta(f: Fixity, p: PartId, w: u64) -> u64 {
    if f == Fixity::Fixed(p) {
        0 // already counted in the seed total
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::PartSet;
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn params() -> CoarsenParams {
        CoarsenParams {
            max_cluster_weight: u64::MAX,
            max_cluster_weights: Vec::new(),
            max_net_size_for_matching: 64,
            max_fixed_part_weight: Vec::new(),
            allow_free_fixed_merge: false,
            threads: 1,
        }
    }

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn halves_a_chain() {
        let hg = chain(16);
        let fx = FixedVertices::all_free(16);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let level = coarsen_once(&hg, &fx, &params(), 0.95, None, &mut rng).unwrap();
        assert!(level.hg.num_vertices() <= 12);
        assert_eq!(level.hg.total_weight(), 16);
        assert_eq!(level.map.len(), 16);
    }

    #[test]
    fn fully_fixed_graph_collapses_to_terminal_clusters() {
        let hg = chain(8);
        let mut fx = FixedVertices::all_free(8);
        for i in 0..8 {
            fx.fix(VertexId(i), PartId(i % 2));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // No adjacent pair shares a part, but same-part fixed vertices are
        // interchangeable, so the pre-pass groups them: two clusters.
        let level = coarsen_once(&hg, &fx, &params(), 0.95, None, &mut rng).unwrap();
        assert_eq!(level.hg.num_vertices(), 2);
        for v in level.hg.vertices() {
            assert!(level.fixed.fixity(v).is_fixed());
        }
        // The cross nets between the two clusters merge into one weighted net.
        assert_eq!(level.hg.num_nets(), 1);
        assert_eq!(level.hg.net_weight(vlsi_hypergraph::NetId(0)), 7);
    }

    #[test]
    fn incompatible_fixities_never_merge_in_ablation_mode() {
        let hg = chain(8);
        let mut fx = FixedVertices::all_free(8);
        for i in 0..8 {
            fx.fix(VertexId(i), PartId(i % 2));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // With the pre-pass disabled, adjacent vertices alternate parts and
        // no pair can merge => stall.
        let p = CoarsenParams {
            allow_free_fixed_merge: true,
            ..params()
        };
        let level = coarsen_once(&hg, &fx, &p, 0.95, None, &mut rng);
        assert!(level.is_none());
    }

    #[test]
    fn fixity_carried_into_cluster() {
        let hg = chain(4);
        let mut fx = FixedVertices::all_free(4);
        fx.fix(VertexId(0), PartId(1));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let level = coarsen_once(&hg, &fx, &params(), 1.0, None, &mut rng).unwrap();
        let c = level.map[0];
        assert_eq!(level.fixed.fixity(c), Fixity::Fixed(PartId(1)));
    }

    #[test]
    fn cluster_weight_cap_respected() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(3)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(4);
        let p = CoarsenParams {
            max_cluster_weight: 5, // no pair fits (3 + 3 = 6)
            ..params()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert!(coarsen_once(&hg, &fx, &p, 0.95, None, &mut rng).is_none());
    }

    #[test]
    fn same_part_restriction() {
        let hg = chain(8);
        let fx = FixedVertices::all_free(8);
        let parts: Vec<PartId> = (0..8).map(|i| PartId(i % 2)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Alternating parts on a chain: no adjacent pair shares a part.
        assert!(coarsen_once(&hg, &fx, &params(), 0.95, Some(&parts), &mut rng).is_none());
    }

    #[test]
    fn parallel_nets_merge_weights() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        // Two clusters will form along these heavy pairs...
        b.add_net(10, [v[0], v[1]]).unwrap();
        b.add_net(10, [v[2], v[3]]).unwrap();
        // ...and these two parallel nets between the pairs must merge.
        b.add_net(1, [v[0], v[2]]).unwrap();
        b.add_net(2, [v[1], v[3]]).unwrap();
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(4);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let level = coarsen_once(&hg, &fx, &params(), 1.0, None, &mut rng).unwrap();
        if level.hg.num_vertices() == 2 {
            assert_eq!(level.hg.num_nets(), 1);
            assert_eq!(level.hg.net_weight(vlsi_hypergraph::NetId(0)), 3);
        }
    }

    #[test]
    fn merge_fixity_table() {
        use Fixity::*;
        let s01 = PartSet::all(2);
        let s12: PartSet = [PartId(1), PartId(2)].into_iter().collect();
        assert_eq!(merge_fixity(Free, Free), Some(Free));
        assert_eq!(
            merge_fixity(FixedAny(s01), FixedAny(s12)),
            Some(Fixed(PartId(1)))
        );
        let s0 = PartSet::single(PartId(0));
        let s2 = PartSet::single(PartId(2));
        assert_eq!(merge_fixity(FixedAny(s0), FixedAny(s2)), None);
        assert_eq!(
            merge_fixity(Fixed(PartId(2)), FixedAny(s12)),
            Some(Fixed(PartId(2)))
        );
        assert_eq!(merge_fixity(Fixed(PartId(0)), FixedAny(s12)), None);
    }

    #[test]
    fn parallel_coarsening_matches_sequential_exactly() {
        // Big enough to clear MATCH_GRAIN/NET_GRAIN so threads actually
        // fork: a 3000-vertex chain with weights and a sprinkling of fixed
        // vertices, plus some wider nets for the contraction dedup.
        let n = 3000;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|i| b.add_vertex(1 + (i as u64 % 3))).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        for i in (0..n - 4).step_by(7) {
            b.add_net(2, [v[i], v[i + 2], v[i + 4]]).unwrap();
        }
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(n);
        for i in (0..n).step_by(13) {
            fx.fix(VertexId(i as u32), PartId((i % 2) as u32));
        }
        let budgeted = CoarsenParams {
            max_cluster_weight: 9,
            max_fixed_part_weight: vec![4000, 4000],
            ..params()
        };
        let baseline = {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            coarsen_once(&hg, &fx, &budgeted, 0.95, None, &mut rng).unwrap()
        };
        for threads in [2, 4, 8] {
            let p = CoarsenParams {
                threads,
                ..budgeted.clone()
            };
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let level = coarsen_once(&hg, &fx, &p, 0.95, None, &mut rng).unwrap();
            assert_eq!(level.map, baseline.map, "{threads} threads: cluster map");
            assert_eq!(
                level.hg.num_nets(),
                baseline.hg.num_nets(),
                "{threads} threads: net count"
            );
            let nets: Vec<(Vec<VertexId>, u64)> = level
                .hg
                .nets()
                .map(|nt| (level.hg.net_pins(nt).to_vec(), level.hg.net_weight(nt)))
                .collect();
            let base_nets: Vec<(Vec<VertexId>, u64)> = baseline
                .hg
                .nets()
                .map(|nt| {
                    (
                        baseline.hg.net_pins(nt).to_vec(),
                        baseline.hg.net_weight(nt),
                    )
                })
                .collect();
            assert_eq!(nets, base_nets, "{threads} threads: coarse nets");
        }
    }

    #[test]
    fn projection_roundtrip() {
        let hg = chain(10);
        let fx = FixedVertices::all_free(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let level = coarsen_once(&hg, &fx, &params(), 0.95, None, &mut rng).unwrap();
        let coarse_parts: Vec<PartId> = level.hg.vertices().map(|v| PartId(v.0 % 2)).collect();
        let fine = level.project(&coarse_parts);
        for v in hg.vertices() {
            assert_eq!(fine[v.index()], coarse_parts[level.map[v.index()].index()]);
        }
    }
}
