//! The multilevel CLIP-FM partitioner — the paper's experimental engine.
//!
//! Coarsen with heavy-edge matching (respecting fixities), solve the
//! coarsest instance with multi-start FM, then uncoarsen and refine with
//! CLIP FM at every level. Optional V-cycling re-coarsens under the current
//! partition; the paper found it "a net loss in terms of overall
//! cost-runtime profile", so the default is zero V-cycles, but it is kept
//! for the ablation benchmarks.

mod coarsen;

pub(crate) use coarsen::within_resource_caps;
pub use coarsen::{coarsen_once, contract_clusters, merge_fixity, CoarsenParams, Level};

use vlsi_rng::Rng;
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Hypergraph, PartId};

use crate::cancel::CancelToken;
use crate::config::MultilevelConfig;
use crate::engine::{FmStack, Refiner, RunCtx};
use crate::fm::BipartFm;
use crate::{PartitionError, PartitionResult};

/// Result of a multilevel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelResult {
    /// Final partition of every original vertex.
    pub parts: Vec<PartId>,
    /// Final cut value.
    pub cut: u64,
    /// Vertex counts of each level, from the original down to the coarsest.
    pub level_sizes: Vec<usize>,
    /// Cut of the coarsest-level solution before refinement.
    pub coarse_cut: u64,
}

impl From<MultilevelResult> for PartitionResult {
    fn from(r: MultilevelResult) -> Self {
        PartitionResult::new(r.parts, r.cut)
    }
}

/// The multilevel bipartitioner.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::{MultilevelConfig, MultilevelPartitioner};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..64).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let balance = BalanceConstraint::bisection(64, Tolerance::Relative(0.02));
/// let fixed = FixedVertices::all_free(64);
/// let ml = MultilevelPartitioner::new(MultilevelConfig::default());
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(0);
/// let r = ml.run(&hg, &fixed, &balance, &mut rng)?;
/// assert_eq!(r.cut, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultilevelPartitioner {
    config: MultilevelConfig,
}

impl MultilevelPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelPartitioner { config }
    }

    /// The partitioner's configuration.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    /// Partitions `hg` into two blocks under `balance`, honouring `fixed`.
    ///
    /// # Errors
    /// * [`PartitionError::UnsupportedPartCount`] unless `balance` is 2-way.
    /// * [`PartitionError::InfeasibleInstance`] / [`PartitionError::Balance`]
    ///   when no legal solution can be constructed.
    pub fn run<R: Rng + ?Sized>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
    ) -> Result<MultilevelResult, PartitionError> {
        self.run_with_sink(hg, fixed, balance, rng, &NullSink)
    }

    /// [`run`](Self::run), recording [`Event::LevelStart`] /
    /// [`Event::LevelEnd`] brackets plus every underlying FM pass into
    /// `sink`. Level 0 is the original hypergraph; higher indices are
    /// coarser. A `LevelStart` is emitted as each coarse level is built
    /// (top-down), and a `LevelEnd` with the post-refinement cut as each
    /// level is solved (bottom-up, coarsest first). With [`NullSink`] this
    /// compiles to exactly [`run`](Self::run).
    pub fn run_with_sink<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
    ) -> Result<MultilevelResult, PartitionError> {
        self.run_cancellable(hg, fixed, balance, rng, sink, &CancelToken::never())
    }

    /// [`run_with_sink`](Self::run_with_sink), additionally polling
    /// `cancel`. A cancelled run truncates coarsening, keeps only the first
    /// coarse start, lets the inner FM stop at its own checkpoints, skips
    /// V-cycles, and records one [`Event::Cancelled`] (stage `level`). The
    /// projection from coarse to fine always completes, so the result is a
    /// legal partition of the *original* hypergraph.
    ///
    /// # Errors
    /// Same as [`run`](Self::run).
    pub fn run_cancellable<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<MultilevelResult, PartitionError> {
        if balance.num_parts() != 2 {
            return Err(PartitionError::UnsupportedPartCount {
                requested: balance.num_parts(),
                supported: 2,
            });
        }
        let cfg = &self.config;
        let params = CoarsenParams {
            max_cluster_weight: ((hg.total_weight() as f64) * cfg.max_cluster_fraction)
                .ceil()
                .max(1.0) as u64,
            max_cluster_weights: Vec::new(),
            max_net_size_for_matching: 64,
            // Never let a partition's fixed weight outgrow its capacity.
            max_fixed_part_weight: (0..2).map(|p| balance.max(PartId(p), 0)).collect(),
            allow_free_fixed_merge: false,
            threads: cfg.threads,
        };

        // Build the coarsening stack: levels[i] is the coarse graph produced
        // from levels[i-1] (levels[0] from the original).
        let mut levels: Vec<Level> = Vec::new();
        loop {
            let (cur_hg, cur_fixed) = match levels.last() {
                Some(l) => (&l.hg, &l.fixed),
                None => (hg, fixed),
            };
            if cur_hg.num_vertices() <= cfg.coarsest_size || cancel.is_cancelled() {
                break;
            }
            match coarsen_once(cur_hg, cur_fixed, &params, cfg.min_shrink, None, rng) {
                Some(level) => {
                    if S::ENABLED {
                        sink.record(&Event::LevelStart {
                            level: (levels.len() + 1) as u32,
                            vertices: level.hg.num_vertices() as u64,
                            nets: level.hg.num_nets() as u64,
                        });
                    }
                    levels.push(level);
                }
                None => break,
            }
        }

        // Solve the coarsest level with multi-start FM.
        let (coarsest_hg, coarsest_fixed) = match levels.last() {
            Some(l) => (&l.hg, &l.fixed),
            None => (hg, fixed),
        };
        let coarse_fm = BipartFm::new(cfg.coarse_fm).with_threads(cfg.threads);
        let mut best: Option<(u64, Vec<PartId>)> = None;
        for start in 0..cfg.coarse_starts.max(1) {
            // Start 0 always runs so a cancelled run still yields a legal
            // solution; later starts are skipped once the token fires.
            if start > 0 && cancel.is_cancelled() {
                break;
            }
            let r = coarse_fm.run_random_cancellable(
                coarsest_hg,
                coarsest_fixed,
                balance,
                rng,
                sink,
                cancel,
            )?;
            if best.as_ref().is_none_or(|(c, _)| r.cut < *c) {
                best = Some((r.cut, r.parts));
            }
        }
        let (coarse_cut, mut parts) = best.expect("at least one start");
        if S::ENABLED {
            sink.record(&Event::LevelEnd {
                level: levels.len() as u32,
                vertices: coarsest_hg.num_vertices() as u64,
                nets: coarsest_hg.num_nets() as u64,
                cut: coarse_cut,
            });
        }

        // Uncoarsen and refine (the configured FM stack at every level).
        let refiner = FmStack::from_multilevel(cfg);
        let mut cut = coarse_cut;
        for i in (0..levels.len()).rev() {
            let fine_parts = levels[i].project(&parts);
            let (fine_hg, fine_fixed) = if i == 0 {
                (hg, fixed)
            } else {
                (&levels[i - 1].hg, &levels[i - 1].fixed)
            };
            let r = refiner.refine_ctx(
                fine_hg,
                fine_fixed,
                balance,
                fine_parts,
                RunCtx::new(&mut *rng).with_sink(sink).with_cancel(cancel),
            )?;
            parts = r.parts;
            cut = r.cut;
            if S::ENABLED {
                sink.record(&Event::LevelEnd {
                    level: i as u32,
                    vertices: fine_hg.num_vertices() as u64,
                    nets: fine_hg.num_nets() as u64,
                    cut,
                });
            }
        }

        // Optional V-cycles: re-coarsen under the current partition and
        // refine again.
        for _ in 0..cfg.vcycles {
            if cancel.is_cancelled() {
                break;
            }
            let (vparts, vcut) = self.vcycle(
                hg,
                fixed,
                balance,
                &params,
                parts.clone(),
                rng,
                sink,
                cancel,
            )?;
            if vcut <= cut {
                parts = vparts;
                cut = vcut;
            }
        }

        if S::ENABLED && cancel.is_cancelled() {
            sink.record(&Event::Cancelled {
                stage: CancelStage::Level,
                value: cut,
            });
        }

        let mut level_sizes = vec![hg.num_vertices()];
        level_sizes.extend(levels.iter().map(|l| l.hg.num_vertices()));

        Ok(MultilevelResult {
            parts,
            cut,
            level_sizes,
            coarse_cut,
        })
    }

    /// One V-cycle: coarsen restricted to same-part merges, then refine the
    /// projected solution back down.
    #[allow(clippy::too_many_arguments)]
    fn vcycle<R: Rng + ?Sized, S: Sink>(
        &self,
        hg: &Hypergraph,
        fixed: &FixedVertices,
        balance: &BalanceConstraint,
        params: &CoarsenParams,
        parts: Vec<PartId>,
        rng: &mut R,
        sink: &S,
        cancel: &CancelToken,
    ) -> Result<(Vec<PartId>, u64), PartitionError> {
        let cfg = &self.config;
        let mut levels: Vec<Level> = Vec::new();
        let mut cur_parts = parts.clone();
        loop {
            let (cur_hg, cur_fixed) = match levels.last() {
                Some(l) => (&l.hg, &l.fixed),
                None => (hg, fixed),
            };
            if cur_hg.num_vertices() <= cfg.coarsest_size || cancel.is_cancelled() {
                break;
            }
            match coarsen_once(
                cur_hg,
                cur_fixed,
                params,
                cfg.min_shrink,
                Some(&cur_parts),
                rng,
            ) {
                Some(level) => {
                    // Partition of a cluster = partition of any member (all
                    // members share it by construction).
                    let mut coarse_parts = vec![PartId(0); level.hg.num_vertices()];
                    for v in 0..level.map.len() {
                        coarse_parts[level.map[v].index()] = cur_parts[v];
                    }
                    cur_parts = coarse_parts;
                    levels.push(level);
                }
                None => break,
            }
        }
        let refiner = FmStack::from_multilevel(cfg);
        // Refine at the coarsest level from the projected partition.
        let (coarsest_hg, coarsest_fixed) = match levels.last() {
            Some(l) => (&l.hg, &l.fixed),
            None => (hg, fixed),
        };
        let r = refiner.refine_ctx(
            coarsest_hg,
            coarsest_fixed,
            balance,
            cur_parts,
            RunCtx::new(&mut *rng).with_sink(sink).with_cancel(cancel),
        )?;
        let mut parts = r.parts;
        let mut cut = r.cut;
        for i in (0..levels.len()).rev() {
            let fine_parts = levels[i].project(&parts);
            let (fine_hg, fine_fixed) = if i == 0 {
                (hg, fixed)
            } else {
                (&levels[i - 1].hg, &levels[i - 1].fixed)
            };
            let r = refiner.refine_ctx(
                fine_hg,
                fine_fixed,
                balance,
                fine_parts,
                RunCtx::new(&mut *rng).with_sink(sink).with_cancel(cancel),
            )?;
            parts = r.parts;
            cut = r.cut;
        }
        Ok((parts, cut))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{
        validate_partitioning, HypergraphBuilder, Partitioning, Tolerance, VertexId,
    };
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    /// A 2D grid graph: gridsize² vertices, 2-pin nets along rows/columns.
    fn grid(side: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..side * side).map(|_| b.add_vertex(1)).collect();
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    b.add_net(1, [v[r * side + c], v[r * side + c + 1]])
                        .unwrap();
                }
                if r + 1 < side {
                    b.add_net(1, [v[r * side + c], v[(r + 1) * side + c]])
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    fn small_config() -> MultilevelConfig {
        MultilevelConfig {
            coarsest_size: 16,
            ..MultilevelConfig::default()
        }
    }

    #[test]
    fn grid_bisection_near_optimal() {
        let hg = grid(12); // 144 vertices; optimal bisection cut = 12
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        let ml = MultilevelPartitioner::new(small_config());
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let r = ml.run(&hg, &fixed, &balance, &mut rng).unwrap();
        assert!(r.cut <= 16, "cut {} too far from optimal 12", r.cut);
        assert!(r.level_sizes.len() >= 2, "expected actual coarsening");
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
    }

    #[test]
    fn fixed_vertices_respected_through_levels() {
        let hg = grid(10);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        // Fix the left column to part 0, the right column to part 1.
        for r in 0..10 {
            fixed.fix(VertexId((r * 10) as u32), PartId(0));
            fixed.fix(VertexId((r * 10 + 9) as u32), PartId(1));
        }
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
        let ml = MultilevelPartitioner::new(small_config());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = ml.run(&hg, &fixed, &balance, &mut rng).unwrap();
        for row in 0..10 {
            assert_eq!(r.parts[row * 10], PartId(0));
            assert_eq!(r.parts[row * 10 + 9], PartId(1));
        }
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        assert!(validate_partitioning(&hg, &p, &balance, &fixed).is_valid());
    }

    #[test]
    fn refinement_never_worse_than_coarse() {
        let hg = grid(10);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        let ml = MultilevelPartitioner::new(small_config());
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = ml.run(&hg, &fixed, &balance, &mut rng).unwrap();
            assert!(r.cut <= r.coarse_cut, "seed {seed}");
        }
    }

    #[test]
    fn tiny_graph_skips_coarsening() {
        let hg = grid(3);
        let fixed = FixedVertices::all_free(9);
        let balance = BalanceConstraint::bisection(9, Tolerance::Relative(0.2));
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 100,
            ..MultilevelConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let r = ml.run(&hg, &fixed, &balance, &mut rng).unwrap();
        assert_eq!(r.level_sizes, vec![9]);
        assert!(r.cut <= 5);
    }

    #[test]
    fn vcycling_does_not_hurt() {
        let hg = grid(10);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        let base = MultilevelPartitioner::new(small_config());
        let vc = MultilevelPartitioner::new(MultilevelConfig {
            vcycles: 2,
            ..small_config()
        });
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let a = base.run(&hg, &fixed, &balance, &mut rng_a).unwrap();
        let b = vc.run(&hg, &fixed, &balance, &mut rng_b).unwrap();
        assert!(b.cut <= a.cut);
    }

    #[test]
    fn sink_brackets_every_level() {
        use vlsi_trace::VecSink;
        let hg = grid(12);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        let ml = MultilevelPartitioner::new(small_config());
        let sink = VecSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let r = ml
            .run_with_sink(&hg, &fixed, &balance, &mut rng, &sink)
            .unwrap();
        let events = sink.take();
        let starts: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::LevelStart { level, .. } => Some(*level),
                _ => None,
            })
            .collect();
        let ends: Vec<(u32, u64)> = events
            .iter()
            .filter_map(|e| match e {
                Event::LevelEnd { level, cut, .. } => Some((*level, *cut)),
                _ => None,
            })
            .collect();
        // One LevelStart per coarse level, counting up from 1.
        assert_eq!(starts.len(), r.level_sizes.len() - 1);
        assert!(starts.iter().enumerate().all(|(i, &l)| l == i as u32 + 1));
        // LevelEnd walks back down: coarsest first, level 0 last.
        assert_eq!(ends.len(), r.level_sizes.len());
        assert_eq!(ends[0], (starts.len() as u32, r.coarse_cut));
        assert_eq!(*ends.last().unwrap(), (0, r.cut));
        // The same stream carries the FM pass brackets.
        assert!(events.iter().any(|e| matches!(e, Event::PassEnd { .. })));
    }

    #[test]
    fn sink_run_matches_null_run() {
        use vlsi_trace::VecSink;
        let hg = grid(10);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.02));
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            vcycles: 1,
            ..small_config()
        });
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        let plain = ml.run(&hg, &fixed, &balance, &mut rng_a).unwrap();
        let sink = VecSink::new();
        let traced = ml
            .run_with_sink(&hg, &fixed, &balance, &mut rng_b, &sink)
            .unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn multiway_rejected() {
        let hg = grid(4);
        let fixed = FixedVertices::all_free(16);
        let balance = BalanceConstraint::even(4, &[16], Tolerance::Relative(0.1));
        let ml = MultilevelPartitioner::new(small_config());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = ml.run(&hg, &fixed, &balance, &mut rng).unwrap_err();
        assert!(matches!(err, PartitionError::UnsupportedPartCount { .. }));
    }
}
