//! Configuration types for the FM and multilevel engines.

use std::fmt;

/// How many moves an FM pass may make before it is hard-stopped.
///
/// Section III of the paper: "we may limit the number of moves per pass
/// *after the first pass* in order to reduce overhead when the best solution
/// found is near the beginning of the pass." Table III evaluates cutoffs of
/// 50%, 25%, 10% and 5% of the movable vertices.
///
/// # Example
/// ```
/// use vlsi_partition::PassCutoff;
/// assert_eq!(PassCutoff::Unlimited.limit(1000), 1000);
/// assert_eq!(PassCutoff::Fraction(0.25).limit(1000), 250);
/// assert_eq!(PassCutoff::Moves(42).limit(1000), 42);
/// // a fractional cutoff always allows at least one move
/// assert_eq!(PassCutoff::Fraction(0.05).limit(3), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PassCutoff {
    /// Classic FM: every movable vertex is moved once per pass.
    #[default]
    Unlimited,
    /// Stop the pass after this fraction of the movable vertices has moved.
    Fraction(f64),
    /// Stop the pass after this absolute number of moves.
    Moves(usize),
}

impl PassCutoff {
    /// The move limit implied for a pass over `movable` vertices
    /// (at least 1 unless there is nothing to move).
    pub fn limit(self, movable: usize) -> usize {
        match self {
            PassCutoff::Unlimited => movable,
            PassCutoff::Fraction(f) => {
                let l = (movable as f64 * f).floor() as usize;
                l.clamp(usize::from(movable > 0), movable)
            }
            PassCutoff::Moves(m) => m.min(movable),
        }
    }
}

impl fmt::Display for PassCutoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassCutoff::Unlimited => write!(f, "unlimited"),
            PassCutoff::Fraction(x) => write!(f, "{:.0}%", x * 100.0),
            PassCutoff::Moves(m) => write!(f, "{m} moves"),
        }
    }
}

/// Gain-bucket selection policy.
///
/// * [`SelectionPolicy::Lifo`] — classic LIFO FM: ties within a gain bucket
///   are broken by most-recent insertion.
/// * [`SelectionPolicy::Clip`] — the CLIP variant of Dutt & Deng (ICCAD'96)
///   used by the paper's multilevel engine: at the start of a pass every
///   vertex's *initial* gain is subtracted from its bucket key, so selection
///   is driven by the gain *change* since the pass began and moves cluster
///   around recently moved vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Classic LIFO tie-breaking on raw gains.
    #[default]
    Lifo,
    /// Cluster-oriented iterative improvement (CLIP).
    Clip,
}

impl fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionPolicy::Lifo => write!(f, "lifo"),
            SelectionPolicy::Clip => write!(f, "clip"),
        }
    }
}

/// Configuration of the flat FM bipartitioner.
///
/// # Example
/// ```
/// use vlsi_partition::{FmConfig, PassCutoff, SelectionPolicy};
/// let cfg = FmConfig {
///     policy: SelectionPolicy::Clip,
///     cutoff: PassCutoff::Fraction(0.25),
///     ..FmConfig::default()
/// };
/// assert_eq!(cfg.max_passes, 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmConfig {
    /// Gain selection policy (LIFO or CLIP).
    pub policy: SelectionPolicy,
    /// Hard cutoff on moves per pass, applied after the first pass.
    pub cutoff: PassCutoff,
    /// Upper bound on the number of passes per run.
    pub max_passes: usize,
    /// Also apply the cutoff to the first pass (the paper always exempts
    /// the first pass, since it starts from a random partitioning).
    pub cutoff_first_pass: bool,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            policy: SelectionPolicy::Lifo,
            cutoff: PassCutoff::Unlimited,
            max_passes: 30,
            cutoff_first_pass: false,
        }
    }
}

/// Configuration of the multilevel partitioner.
///
/// Defaults follow the paper's engine: CLIP FM refinement, heavy-edge
/// matching with a clustering ratio around 0.75 stop threshold, no
/// V-cycling ("a net loss in terms of overall cost-runtime profile").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// Stop coarsening when this many vertices remain.
    pub coarsest_size: usize,
    /// Abort coarsening when one level shrinks the graph by less than this
    /// factor (guards against matching stalls on star-like graphs).
    pub min_shrink: f64,
    /// Maximum cluster weight as a fraction of total weight (prevents a
    /// single coarse vertex from exceeding the balance maxima).
    pub max_cluster_fraction: f64,
    /// FM settings used at the coarsest level.
    pub coarse_fm: FmConfig,
    /// FM settings used for refinement at every uncoarsening level.
    pub refine_fm: FmConfig,
    /// Optional second refinement stage run after `refine_fm` at every
    /// level. FM never worsens its input, so stacking stages dominates
    /// either alone: CLIP excels on free instances, LIFO on
    /// fixed-terminal ones.
    pub refine_fm2: Option<FmConfig>,
    /// Number of random initial solutions tried at the coarsest level.
    pub coarse_starts: usize,
    /// Number of V-cycles (0 = plain V; the paper disables V-cycling).
    pub vcycles: usize,
    /// Worker-thread budget for the parallel hot paths (heavy-edge match
    /// scoring, cluster contraction, FM/k-way gain initialization). The
    /// result is byte-identical for every value — the parallel phases
    /// compute exactly what the sequential code would and every
    /// state-dependent decision replays in the original order — so this is
    /// purely a speed knob. `0` and `1` both mean single-threaded.
    pub threads: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsest_size: 120,
            min_shrink: 0.95,
            max_cluster_fraction: 0.05,
            coarse_fm: FmConfig {
                policy: SelectionPolicy::Lifo,
                max_passes: 20,
                ..FmConfig::default()
            },
            // The paper's engine used CLIP refinement and found LIFO "very
            // similar". In this implementation CLIP refines free instances
            // better while LIFO is markedly stronger on fixed-terminal
            // instances, so the default stacks both.
            refine_fm: FmConfig {
                policy: SelectionPolicy::Clip,
                max_passes: 8,
                ..FmConfig::default()
            },
            refine_fm2: Some(FmConfig {
                policy: SelectionPolicy::Lifo,
                max_passes: 8,
                ..FmConfig::default()
            }),
            coarse_starts: 4,
            vcycles: 0,
            threads: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_limits() {
        assert_eq!(PassCutoff::Unlimited.limit(10), 10);
        assert_eq!(PassCutoff::Fraction(0.5).limit(11), 5);
        assert_eq!(PassCutoff::Fraction(0.05).limit(10), 1);
        assert_eq!(PassCutoff::Fraction(0.0).limit(10), 1);
        assert_eq!(PassCutoff::Fraction(0.05).limit(0), 0);
        assert_eq!(PassCutoff::Moves(3).limit(2), 2);
    }

    #[test]
    fn cutoff_display() {
        assert_eq!(PassCutoff::Fraction(0.25).to_string(), "25%");
        assert_eq!(PassCutoff::Unlimited.to_string(), "unlimited");
        assert_eq!(PassCutoff::Moves(9).to_string(), "9 moves");
    }

    #[test]
    fn defaults_match_paper_setup() {
        let ml = MultilevelConfig::default();
        assert_eq!(ml.vcycles, 0); // paper: V-cycling disabled
        assert_eq!(ml.threads, 1); // parallelism is opt-in
        assert_eq!(ml.refine_fm.policy, SelectionPolicy::Clip);
        assert_eq!(FmConfig::default().cutoff, PassCutoff::Unlimited);
        assert!(!FmConfig::default().cutoff_first_pass);
    }

    #[test]
    fn policy_display() {
        assert_eq!(SelectionPolicy::Lifo.to_string(), "lifo");
        assert_eq!(SelectionPolicy::Clip.to_string(), "clip");
    }
}
