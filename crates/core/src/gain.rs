//! The classic FM gain-bucket structure and its k-way generalization.
//!
//! An array of doubly-linked lists indexed by gain. Insertion is at the
//! list head, so equal-gain ties are broken by most-recent insertion —
//! exactly the LIFO discipline of LIFO-FM. The CLIP policy reuses the same
//! structure with shifted keys.
//!
//! [`KwayGains`] stacks one [`GainBuckets`] per *target* part, giving
//! every engine — 2-way FM and direct k-way refinement alike — the same
//! move-selection core. [`MoveLog`] is the shared best-prefix rollback
//! companion.

use vlsi_hypergraph::{PartId, VertexId};

const NONE: u32 = u32::MAX;

/// A bucket array mapping gain keys to LIFO lists of vertices.
///
/// Keys may range over `[-key_bound, key_bound]`. All operations are O(1)
/// except [`GainBuckets::select`], which scans downward from the current
/// maximum (amortized O(1) across a pass in the classic FM analysis).
///
/// # Example
/// ```
/// use vlsi_hypergraph::VertexId;
/// use vlsi_partition::GainBuckets;
///
/// let mut gb = GainBuckets::new(4, 10);
/// gb.insert(VertexId(0), 3);
/// gb.insert(VertexId(1), 5);
/// gb.insert(VertexId(2), 5); // same gain, inserted later => selected first
/// let (v, key) = gb.select(|_| true).unwrap();
/// assert_eq!((v, key), (VertexId(2), 5));
/// gb.remove(VertexId(2));
/// assert_eq!(gb.select(|_| true).unwrap().0, VertexId(1));
/// ```
#[derive(Debug, Clone)]
pub struct GainBuckets {
    key_bound: i64,
    heads: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    key_of: Vec<i64>,
    present: Vec<bool>,
    max_key: i64,
    len: usize,
}

impl GainBuckets {
    /// Creates buckets for `num_vertices` vertices with keys in
    /// `[-key_bound, key_bound]`.
    pub fn new(num_vertices: usize, key_bound: i64) -> Self {
        let span = (2 * key_bound + 1) as usize;
        GainBuckets {
            key_bound,
            heads: vec![NONE; span],
            next: vec![NONE; num_vertices],
            prev: vec![NONE; num_vertices],
            key_of: vec![0; num_vertices],
            present: vec![false; num_vertices],
            max_key: -key_bound,
            len: 0,
        }
    }

    #[inline]
    fn bucket_index(&self, key: i64) -> usize {
        debug_assert!(
            key.abs() <= self.key_bound,
            "key {key} outside ±{}",
            self.key_bound
        );
        (key + self.key_bound) as usize
    }

    /// Number of vertices currently in the buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no vertices are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `vertex` is currently in the buckets.
    #[inline]
    pub fn contains(&self, vertex: VertexId) -> bool {
        self.present[vertex.index()]
    }

    /// Current key of `vertex` (meaningful only while present).
    #[inline]
    pub fn key(&self, vertex: VertexId) -> i64 {
        self.key_of[vertex.index()]
    }

    /// Inserts `vertex` with the given key at the head of its bucket.
    ///
    /// # Panics
    /// Panics (debug) if the vertex is already present or the key is out of
    /// bounds.
    pub fn insert(&mut self, vertex: VertexId, key: i64) {
        debug_assert!(!self.present[vertex.index()], "vertex already present");
        let b = self.bucket_index(key);
        let old_head = self.heads[b];
        self.next[vertex.index()] = old_head;
        self.prev[vertex.index()] = NONE;
        if old_head != NONE {
            self.prev[old_head as usize] = vertex.0;
        }
        self.heads[b] = vertex.0;
        self.key_of[vertex.index()] = key;
        self.present[vertex.index()] = true;
        self.len += 1;
        if key > self.max_key {
            self.max_key = key;
        }
    }

    /// Removes `vertex` from the buckets. A no-op if absent.
    pub fn remove(&mut self, vertex: VertexId) {
        if !self.present[vertex.index()] {
            return;
        }
        let (p, n) = (self.prev[vertex.index()], self.next[vertex.index()]);
        if p != NONE {
            self.next[p as usize] = n;
        } else {
            let b = self.bucket_index(self.key_of[vertex.index()]);
            self.heads[b] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
        self.present[vertex.index()] = false;
        self.len -= 1;
    }

    /// Changes `vertex`'s key, re-inserting it at the head of the new bucket
    /// (the classic FM update discipline). A no-op if the vertex is absent.
    pub fn update(&mut self, vertex: VertexId, new_key: i64) {
        if !self.present[vertex.index()] {
            return;
        }
        if self.key_of[vertex.index()] == new_key {
            return;
        }
        self.remove(vertex);
        self.insert(vertex, new_key);
    }

    /// Adds `delta` to `vertex`'s key. A no-op if the vertex is absent.
    pub fn adjust(&mut self, vertex: VertexId, delta: i64) {
        if !self.present[vertex.index()] || delta == 0 {
            return;
        }
        let k = self.key_of[vertex.index()];
        self.update(vertex, k + delta);
    }

    /// Finds the highest-key vertex satisfying `feasible`, scanning buckets
    /// from the current maximum downward and each bucket in LIFO order.
    ///
    /// Returns `None` if no present vertex is feasible.
    pub fn select<F: FnMut(VertexId) -> bool>(&self, mut feasible: F) -> Option<(VertexId, i64)> {
        if self.len == 0 {
            return None;
        }
        let mut key = self.max_key;
        while key >= -self.key_bound {
            let mut cur = self.heads[self.bucket_index(key)];
            while cur != NONE {
                let v = VertexId(cur);
                if feasible(v) {
                    return Some((v, key));
                }
                cur = self.next[cur as usize];
            }
            key -= 1;
        }
        None
    }

    /// Tightens the internal maximum-key hint (called by the FM engine after
    /// removals to keep future selects fast).
    pub fn decay_max(&mut self) {
        while self.max_key > -self.key_bound && self.heads[self.bucket_index(self.max_key)] == NONE
        {
            self.max_key -= 1;
        }
    }

    /// Removes all vertices (O(capacity)).
    pub fn clear(&mut self) {
        self.heads.fill(NONE);
        self.present.fill(false);
        self.max_key = -self.key_bound;
        self.len = 0;
    }
}

/// A k-way gain container: one [`GainBuckets`] per *target* part.
///
/// Each (vertex, target-part) pair is an independent entry keyed by the
/// gain of moving the vertex *to* that part. In the 2-way case this
/// degenerates to classic FM — a vertex on side `s` has exactly one
/// useful entry, in the bucket for `s.other_side()` — so the bipartition
/// engine and the direct k-way refiner share one selection/locking core.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{PartId, VertexId};
/// use vlsi_partition::KwayGains;
///
/// let mut kg = KwayGains::new(3, 4, 10);
/// kg.insert(VertexId(0), PartId(1), 3);
/// kg.insert(VertexId(0), PartId(2), 5);
/// kg.insert(VertexId(1), PartId(1), 5); // same key, later insert, lower part wins ties
/// let (v, to, key) = kg.select_best(|_, _| true).unwrap();
/// assert_eq!((v, to, key), (VertexId(1), PartId(1), 5));
/// kg.remove_all(VertexId(1));
/// assert_eq!(kg.select_best(|_, _| true).unwrap().1, PartId(2));
/// ```
#[derive(Debug, Clone)]
pub struct KwayGains {
    targets: Vec<GainBuckets>,
    key_bound: i64,
}

impl KwayGains {
    /// Creates buckets for `num_parts` target parts over `num_vertices`
    /// vertices with keys in `[-key_bound, key_bound]`.
    pub fn new(num_parts: usize, num_vertices: usize, key_bound: i64) -> Self {
        KwayGains {
            targets: (0..num_parts)
                .map(|_| GainBuckets::new(num_vertices, key_bound))
                .collect(),
            key_bound,
        }
    }

    /// Number of target parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.targets.len()
    }

    /// Total number of (vertex, target) entries across all parts.
    pub fn len(&self) -> usize {
        self.targets.iter().map(GainBuckets::len).sum()
    }

    /// Returns `true` if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.targets.iter().all(GainBuckets::is_empty)
    }

    /// Returns `true` if `(vertex, to)` is currently present.
    #[inline]
    pub fn contains(&self, vertex: VertexId, to: PartId) -> bool {
        self.targets[to.index()].contains(vertex)
    }

    /// Current key of `(vertex, to)` (meaningful only while present).
    #[inline]
    pub fn key(&self, vertex: VertexId, to: PartId) -> i64 {
        self.targets[to.index()].key(vertex)
    }

    /// Inserts `(vertex, to)` with the given key at the head of its bucket.
    #[inline]
    pub fn insert(&mut self, vertex: VertexId, to: PartId, key: i64) {
        self.targets[to.index()].insert(vertex, key);
    }

    /// Removes `(vertex, to)`. A no-op if absent.
    #[inline]
    pub fn remove(&mut self, vertex: VertexId, to: PartId) {
        self.targets[to.index()].remove(vertex);
    }

    /// Removes `vertex` from every target bucket (when it is locked).
    pub fn remove_all(&mut self, vertex: VertexId) {
        for b in &mut self.targets {
            b.remove(vertex);
        }
    }

    /// Re-keys `(vertex, to)`, re-inserting at the new bucket head. A
    /// no-op if absent.
    #[inline]
    pub fn update(&mut self, vertex: VertexId, to: PartId, new_key: i64) {
        self.targets[to.index()].update(vertex, new_key);
    }

    /// Adds `delta` to `(vertex, to)`'s key. A no-op if absent.
    #[inline]
    pub fn adjust(&mut self, vertex: VertexId, to: PartId, delta: i64) {
        self.targets[to.index()].adjust(vertex, delta);
    }

    /// Selects the best feasible entry for one specific target part (the
    /// 2-way engine picks per-target and applies its own cross-target
    /// tie-break).
    #[inline]
    pub fn select_from<F: FnMut(VertexId) -> bool>(
        &self,
        to: PartId,
        feasible: F,
    ) -> Option<(VertexId, i64)> {
        self.targets[to.index()].select(feasible)
    }

    /// Finds the highest-key feasible `(vertex, target)` entry across all
    /// parts, scanning keys downward from the global maximum; at equal
    /// keys, lower target-part indices win, and within a bucket the LIFO
    /// discipline applies.
    pub fn select_best<F: FnMut(VertexId, PartId) -> bool>(
        &self,
        mut feasible: F,
    ) -> Option<(VertexId, PartId, i64)> {
        let mut key = self
            .targets
            .iter()
            .filter(|b| !b.is_empty())
            .map(|b| b.max_key)
            .max()?;
        while key >= -self.key_bound {
            for (t, b) in self.targets.iter().enumerate() {
                if b.is_empty() || b.max_key < key {
                    continue;
                }
                let to = PartId::from_index(t);
                let mut cur = b.heads[b.bucket_index(key)];
                while cur != NONE {
                    let v = VertexId(cur);
                    if feasible(v, to) {
                        return Some((v, to, key));
                    }
                    cur = b.next[cur as usize];
                }
            }
            key -= 1;
        }
        None
    }

    /// Tightens the maximum-key hint of one target's buckets.
    #[inline]
    pub fn decay_max_for(&mut self, to: PartId) {
        self.targets[to.index()].decay_max();
    }

    /// Tightens the maximum-key hints of all targets.
    pub fn decay_max(&mut self) {
        for b in &mut self.targets {
            b.decay_max();
        }
    }

    /// Removes all entries (O(parts × capacity)).
    pub fn clear(&mut self) {
        for b in &mut self.targets {
            b.clear();
        }
    }

    /// Number of vertices the container was sized for.
    pub fn num_vertices(&self) -> usize {
        self.targets.first().map_or(0, |b| b.present.len())
    }

    /// Copies the current (key, presence) state of every entry into a
    /// fresh [`KwayGainsSnapshot`].
    pub fn snapshot(&self) -> KwayGainsSnapshot {
        let mut snap = KwayGainsSnapshot::empty();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Refills `snap` from the current container state, reusing its
    /// allocations. This is the frozen-state handoff of the synchronous
    /// parallel refinement rounds: workers read the snapshot concurrently
    /// while the live container stays untouched until the apply stage.
    pub fn snapshot_into(&self, snap: &mut KwayGainsSnapshot) {
        let k = self.targets.len();
        let n = self.num_vertices();
        snap.num_parts = k;
        snap.num_vertices = n;
        snap.keys.clear();
        snap.keys.resize(n * k, 0);
        snap.present.clear();
        snap.present.resize(n * k, false);
        for (t, b) in self.targets.iter().enumerate() {
            for v in 0..n {
                if b.present[v] {
                    snap.keys[v * k + t] = b.key_of[v];
                    snap.present[v * k + t] = true;
                }
            }
        }
    }
}

/// A frozen copy of a [`KwayGains`] container's (key, presence) state,
/// laid out flat by vertex so worker chunks can read disjoint slices
/// without touching the live bucket lists.
///
/// The snapshot carries no LIFO ordering — the parallel rounds do not
/// need it, because their conflict resolution orders merged proposals by
/// `(gain, vertex id)`, which is a total order on its own.
#[derive(Debug, Clone, Default)]
pub struct KwayGainsSnapshot {
    num_parts: usize,
    num_vertices: usize,
    /// `keys[v * num_parts + t]` = key of entry `(v, t)` while present.
    keys: Vec<i64>,
    /// `present[v * num_parts + t]` = whether entry `(v, t)` exists.
    present: Vec<bool>,
}

impl KwayGainsSnapshot {
    /// An empty snapshot, ready for [`KwayGains::snapshot_into`].
    pub fn empty() -> Self {
        KwayGainsSnapshot::default()
    }

    /// Number of target parts of the snapshotted container.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices of the snapshotted container.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Returns `true` if `(vertex, to)` was present at snapshot time.
    #[inline]
    pub fn contains(&self, vertex: VertexId, to: PartId) -> bool {
        self.present[vertex.index() * self.num_parts + to.index()]
    }

    /// Key of `(vertex, to)` at snapshot time (meaningful only while
    /// [`contains`](KwayGainsSnapshot::contains)).
    #[inline]
    pub fn key(&self, vertex: VertexId, to: PartId) -> i64 {
        self.keys[vertex.index() * self.num_parts + to.index()]
    }

    /// The best present entry for `vertex` among the targets `feasible`
    /// admits: highest key first and, on equal keys, the lower target part
    /// index — the same cross-target tie-break as
    /// [`KwayGains::select_best`].
    pub fn best_entry<F: FnMut(PartId) -> bool>(
        &self,
        vertex: VertexId,
        mut feasible: F,
    ) -> Option<(PartId, i64)> {
        let base = vertex.index() * self.num_parts;
        let mut best: Option<(PartId, i64)> = None;
        for t in 0..self.num_parts {
            if !self.present[base + t] {
                continue;
            }
            let to = PartId::from_index(t);
            if !feasible(to) {
                continue;
            }
            let key = self.keys[base + t];
            // Strictly-greater keeps the lowest part index at equal keys
            // (targets are scanned in ascending index order).
            if best.is_none_or(|(_, k)| key > k) {
                best = Some((to, key));
            }
        }
        best
    }
}

/// The shared best-prefix rollback log of pass-based refinement.
///
/// Every applied move is recorded with the part it came *from*; when the
/// pass ends, [`MoveLog::rollback_to_best`] undoes the suffix beyond the
/// best prefix in reverse order. Engines mark the best prefix whenever
/// their objective improves.
#[derive(Debug, Clone, Default)]
pub struct MoveLog {
    entries: Vec<(VertexId, PartId)>,
    best_len: usize,
}

impl MoveLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        MoveLog::default()
    }

    /// Creates an empty log with room for `capacity` moves.
    pub fn with_capacity(capacity: usize) -> Self {
        MoveLog {
            entries: Vec::with_capacity(capacity),
            best_len: 0,
        }
    }

    /// Records a move of `vertex` that left part `from`.
    #[inline]
    pub fn record(&mut self, vertex: VertexId, from: PartId) {
        self.entries.push((vertex, from));
    }

    /// Marks the current length as the best prefix.
    #[inline]
    pub fn mark_best(&mut self) {
        self.best_len = self.entries.len();
    }

    /// Moves recorded so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no moves were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Length of the marked best prefix.
    #[inline]
    pub fn best_len(&self) -> usize {
        self.best_len
    }

    /// Undoes every move beyond the best prefix, newest first, calling
    /// `undo(vertex, from)` so the engine can restore the vertex to `from`
    /// and update any side state. The log keeps the surviving prefix.
    pub fn rollback_to_best<F: FnMut(VertexId, PartId)>(&mut self, mut undo: F) {
        while self.entries.len() > self.best_len {
            let (v, from) = self.entries.pop().expect("len > best_len >= 0");
            undo(v, from);
        }
    }

    /// Forgets all moves and resets the best mark.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.best_len = 0;
    }

    /// The recorded moves, oldest first.
    pub fn entries(&self) -> &[(VertexId, PartId)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_within_bucket() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 2);
        gb.insert(VertexId(1), 2);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), 2)));
    }

    #[test]
    fn select_skips_infeasible() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 5);
        gb.insert(VertexId(1), 3);
        let got = gb.select(|v| v != VertexId(0));
        assert_eq!(got, Some((VertexId(1), 3)));
    }

    #[test]
    fn select_none_when_all_infeasible() {
        let mut gb = GainBuckets::new(2, 5);
        gb.insert(VertexId(0), 1);
        assert_eq!(gb.select(|_| false), None);
    }

    #[test]
    fn remove_middle_of_list() {
        let mut gb = GainBuckets::new(3, 2);
        gb.insert(VertexId(0), 0);
        gb.insert(VertexId(1), 0);
        gb.insert(VertexId(2), 0);
        gb.remove(VertexId(1)); // list is 2 -> [1] -> 0
        assert_eq!(gb.len(), 2);
        assert_eq!(gb.select(|_| true), Some((VertexId(2), 0)));
        gb.remove(VertexId(2));
        assert_eq!(gb.select(|_| true), Some((VertexId(0), 0)));
    }

    #[test]
    fn update_moves_to_new_bucket_head() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 1);
        gb.insert(VertexId(1), 4);
        gb.update(VertexId(0), 4);
        // v0 re-inserted at head of bucket 4
        assert_eq!(gb.select(|_| true), Some((VertexId(0), 4)));
    }

    #[test]
    fn adjust_applies_delta() {
        let mut gb = GainBuckets::new(2, 10);
        gb.insert(VertexId(0), -2);
        gb.adjust(VertexId(0), 5);
        assert_eq!(gb.key(VertexId(0)), 3);
        gb.adjust(VertexId(1), 5); // absent: no-op
        assert_eq!(gb.len(), 1);
    }

    #[test]
    fn negative_keys_work() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), -4);
        gb.insert(VertexId(1), -1);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), -1)));
    }

    #[test]
    fn decay_and_reinsert() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 4);
        gb.remove(VertexId(0));
        gb.decay_max();
        gb.insert(VertexId(1), -3);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), -3)));
    }

    #[test]
    fn clear_empties() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 1);
        gb.clear();
        assert!(gb.is_empty());
        assert!(!gb.contains(VertexId(0)));
        assert_eq!(gb.select(|_| true), None);
    }

    #[test]
    fn double_remove_is_noop() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 1);
        gb.remove(VertexId(0));
        gb.remove(VertexId(0));
        assert!(gb.is_empty());
    }

    #[test]
    fn kway_select_best_scans_parts_in_order() {
        let mut kg = KwayGains::new(4, 3, 6);
        kg.insert(VertexId(0), PartId(3), 4);
        kg.insert(VertexId(1), PartId(1), 4);
        kg.insert(VertexId(2), PartId(2), 6);
        // Highest key wins outright.
        assert_eq!(
            kg.select_best(|_, _| true),
            Some((VertexId(2), PartId(2), 6))
        );
        kg.remove(VertexId(2), PartId(2));
        // Equal keys: lower target index wins.
        assert_eq!(
            kg.select_best(|_, _| true),
            Some((VertexId(1), PartId(1), 4))
        );
    }

    #[test]
    fn kway_select_best_respects_feasibility_and_lifo() {
        let mut kg = KwayGains::new(2, 4, 5);
        kg.insert(VertexId(0), PartId(0), 2);
        kg.insert(VertexId(1), PartId(0), 2); // later insert, same bucket
        assert_eq!(
            kg.select_best(|_, _| true),
            Some((VertexId(1), PartId(0), 2))
        );
        assert_eq!(
            kg.select_best(|v, _| v != VertexId(1)),
            Some((VertexId(0), PartId(0), 2))
        );
        assert_eq!(kg.select_best(|_, _| false), None);
    }

    #[test]
    fn kway_remove_all_and_counts() {
        let mut kg = KwayGains::new(3, 2, 4);
        kg.insert(VertexId(0), PartId(1), 1);
        kg.insert(VertexId(0), PartId(2), -1);
        assert_eq!(kg.len(), 2);
        assert!(kg.contains(VertexId(0), PartId(1)));
        kg.remove_all(VertexId(0));
        assert!(kg.is_empty());
        assert_eq!(kg.select_best(|_, _| true), None);
    }

    #[test]
    fn kway_adjust_and_decay() {
        let mut kg = KwayGains::new(2, 2, 8);
        kg.insert(VertexId(0), PartId(1), 6);
        kg.insert(VertexId(1), PartId(0), 0);
        kg.adjust(VertexId(0), PartId(1), -8);
        kg.decay_max();
        assert_eq!(kg.key(VertexId(0), PartId(1)), -2);
        assert_eq!(
            kg.select_best(|_, _| true),
            Some((VertexId(1), PartId(0), 0))
        );
        kg.clear();
        assert!(kg.is_empty());
    }

    #[test]
    fn snapshot_mirrors_keys_and_presence() {
        let mut kg = KwayGains::new(3, 4, 6);
        kg.insert(VertexId(0), PartId(1), 3);
        kg.insert(VertexId(0), PartId(2), 5);
        kg.insert(VertexId(2), PartId(0), -2);
        let snap = kg.snapshot();
        assert_eq!(snap.num_parts(), 3);
        assert_eq!(snap.num_vertices(), 4);
        assert!(snap.contains(VertexId(0), PartId(1)));
        assert_eq!(snap.key(VertexId(0), PartId(1)), 3);
        assert_eq!(snap.key(VertexId(0), PartId(2)), 5);
        assert_eq!(snap.key(VertexId(2), PartId(0)), -2);
        assert!(!snap.contains(VertexId(1), PartId(0)));
        assert!(!snap.contains(VertexId(3), PartId(2)));

        // The snapshot is frozen: later container mutations do not show.
        kg.remove_all(VertexId(0));
        assert!(snap.contains(VertexId(0), PartId(2)));
    }

    #[test]
    fn snapshot_best_entry_breaks_ties_like_select_best() {
        let mut kg = KwayGains::new(4, 2, 6);
        kg.insert(VertexId(0), PartId(3), 4);
        kg.insert(VertexId(0), PartId(1), 4); // equal key, lower index wins
        kg.insert(VertexId(0), PartId(2), 6);
        let snap = kg.snapshot();
        assert_eq!(snap.best_entry(VertexId(0), |_| true), Some((PartId(2), 6)));
        assert_eq!(
            snap.best_entry(VertexId(0), |to| to != PartId(2)),
            Some((PartId(1), 4))
        );
        assert_eq!(snap.best_entry(VertexId(0), |_| false), None);
        assert_eq!(snap.best_entry(VertexId(1), |_| true), None);
    }

    #[test]
    fn snapshot_into_reuses_and_resizes() {
        let mut kg = KwayGains::new(2, 3, 4);
        kg.insert(VertexId(1), PartId(0), 2);
        let mut snap = KwayGainsSnapshot::empty();
        kg.snapshot_into(&mut snap);
        assert!(snap.contains(VertexId(1), PartId(0)));

        // Refill from a differently-shaped container: stale entries must
        // not leak through.
        let mut kg2 = KwayGains::new(3, 2, 4);
        kg2.insert(VertexId(0), PartId(2), -1);
        kg2.snapshot_into(&mut snap);
        assert_eq!((snap.num_parts(), snap.num_vertices()), (3, 2));
        assert!(snap.contains(VertexId(0), PartId(2)));
        assert_eq!(snap.key(VertexId(0), PartId(2)), -1);
        assert!(!snap.contains(VertexId(1), PartId(0)));
    }

    #[test]
    fn move_log_rollback_restores_suffix() {
        let mut log = MoveLog::new();
        log.record(VertexId(0), PartId(0));
        log.mark_best();
        log.record(VertexId(1), PartId(1));
        log.record(VertexId(2), PartId(0));
        assert_eq!((log.len(), log.best_len()), (3, 1));
        let mut undone = Vec::new();
        log.rollback_to_best(|v, from| undone.push((v, from)));
        // Newest first.
        assert_eq!(
            undone,
            vec![(VertexId(2), PartId(0)), (VertexId(1), PartId(1))]
        );
        assert_eq!(log.entries(), &[(VertexId(0), PartId(0))]);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.best_len(), 0);
    }
}
