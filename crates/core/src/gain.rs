//! The classic FM gain-bucket structure.
//!
//! An array of doubly-linked lists indexed by gain. Insertion is at the
//! list head, so equal-gain ties are broken by most-recent insertion —
//! exactly the LIFO discipline of LIFO-FM. The CLIP policy reuses the same
//! structure with shifted keys.

use vlsi_hypergraph::VertexId;

const NONE: u32 = u32::MAX;

/// A bucket array mapping gain keys to LIFO lists of vertices.
///
/// Keys may range over `[-key_bound, key_bound]`. All operations are O(1)
/// except [`GainBuckets::select`], which scans downward from the current
/// maximum (amortized O(1) across a pass in the classic FM analysis).
///
/// # Example
/// ```
/// use vlsi_hypergraph::VertexId;
/// use vlsi_partition::GainBuckets;
///
/// let mut gb = GainBuckets::new(4, 10);
/// gb.insert(VertexId(0), 3);
/// gb.insert(VertexId(1), 5);
/// gb.insert(VertexId(2), 5); // same gain, inserted later => selected first
/// let (v, key) = gb.select(|_| true).unwrap();
/// assert_eq!((v, key), (VertexId(2), 5));
/// gb.remove(VertexId(2));
/// assert_eq!(gb.select(|_| true).unwrap().0, VertexId(1));
/// ```
#[derive(Debug, Clone)]
pub struct GainBuckets {
    key_bound: i64,
    heads: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    key_of: Vec<i64>,
    present: Vec<bool>,
    max_key: i64,
    len: usize,
}

impl GainBuckets {
    /// Creates buckets for `num_vertices` vertices with keys in
    /// `[-key_bound, key_bound]`.
    pub fn new(num_vertices: usize, key_bound: i64) -> Self {
        let span = (2 * key_bound + 1) as usize;
        GainBuckets {
            key_bound,
            heads: vec![NONE; span],
            next: vec![NONE; num_vertices],
            prev: vec![NONE; num_vertices],
            key_of: vec![0; num_vertices],
            present: vec![false; num_vertices],
            max_key: -key_bound,
            len: 0,
        }
    }

    #[inline]
    fn bucket_index(&self, key: i64) -> usize {
        debug_assert!(
            key.abs() <= self.key_bound,
            "key {key} outside ±{}",
            self.key_bound
        );
        (key + self.key_bound) as usize
    }

    /// Number of vertices currently in the buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no vertices are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `vertex` is currently in the buckets.
    #[inline]
    pub fn contains(&self, vertex: VertexId) -> bool {
        self.present[vertex.index()]
    }

    /// Current key of `vertex` (meaningful only while present).
    #[inline]
    pub fn key(&self, vertex: VertexId) -> i64 {
        self.key_of[vertex.index()]
    }

    /// Inserts `vertex` with the given key at the head of its bucket.
    ///
    /// # Panics
    /// Panics (debug) if the vertex is already present or the key is out of
    /// bounds.
    pub fn insert(&mut self, vertex: VertexId, key: i64) {
        debug_assert!(!self.present[vertex.index()], "vertex already present");
        let b = self.bucket_index(key);
        let old_head = self.heads[b];
        self.next[vertex.index()] = old_head;
        self.prev[vertex.index()] = NONE;
        if old_head != NONE {
            self.prev[old_head as usize] = vertex.0;
        }
        self.heads[b] = vertex.0;
        self.key_of[vertex.index()] = key;
        self.present[vertex.index()] = true;
        self.len += 1;
        if key > self.max_key {
            self.max_key = key;
        }
    }

    /// Removes `vertex` from the buckets. A no-op if absent.
    pub fn remove(&mut self, vertex: VertexId) {
        if !self.present[vertex.index()] {
            return;
        }
        let (p, n) = (self.prev[vertex.index()], self.next[vertex.index()]);
        if p != NONE {
            self.next[p as usize] = n;
        } else {
            let b = self.bucket_index(self.key_of[vertex.index()]);
            self.heads[b] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
        self.present[vertex.index()] = false;
        self.len -= 1;
    }

    /// Changes `vertex`'s key, re-inserting it at the head of the new bucket
    /// (the classic FM update discipline). A no-op if the vertex is absent.
    pub fn update(&mut self, vertex: VertexId, new_key: i64) {
        if !self.present[vertex.index()] {
            return;
        }
        if self.key_of[vertex.index()] == new_key {
            return;
        }
        self.remove(vertex);
        self.insert(vertex, new_key);
    }

    /// Adds `delta` to `vertex`'s key. A no-op if the vertex is absent.
    pub fn adjust(&mut self, vertex: VertexId, delta: i64) {
        if !self.present[vertex.index()] || delta == 0 {
            return;
        }
        let k = self.key_of[vertex.index()];
        self.update(vertex, k + delta);
    }

    /// Finds the highest-key vertex satisfying `feasible`, scanning buckets
    /// from the current maximum downward and each bucket in LIFO order.
    ///
    /// Returns `None` if no present vertex is feasible.
    pub fn select<F: FnMut(VertexId) -> bool>(&self, mut feasible: F) -> Option<(VertexId, i64)> {
        if self.len == 0 {
            return None;
        }
        let mut key = self.max_key;
        while key >= -self.key_bound {
            let mut cur = self.heads[self.bucket_index(key)];
            while cur != NONE {
                let v = VertexId(cur);
                if feasible(v) {
                    return Some((v, key));
                }
                cur = self.next[cur as usize];
            }
            key -= 1;
        }
        None
    }

    /// Tightens the internal maximum-key hint (called by the FM engine after
    /// removals to keep future selects fast).
    pub fn decay_max(&mut self) {
        while self.max_key > -self.key_bound && self.heads[self.bucket_index(self.max_key)] == NONE
        {
            self.max_key -= 1;
        }
    }

    /// Removes all vertices (O(capacity)).
    pub fn clear(&mut self) {
        self.heads.fill(NONE);
        self.present.fill(false);
        self.max_key = -self.key_bound;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_within_bucket() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 2);
        gb.insert(VertexId(1), 2);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), 2)));
    }

    #[test]
    fn select_skips_infeasible() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 5);
        gb.insert(VertexId(1), 3);
        let got = gb.select(|v| v != VertexId(0));
        assert_eq!(got, Some((VertexId(1), 3)));
    }

    #[test]
    fn select_none_when_all_infeasible() {
        let mut gb = GainBuckets::new(2, 5);
        gb.insert(VertexId(0), 1);
        assert_eq!(gb.select(|_| false), None);
    }

    #[test]
    fn remove_middle_of_list() {
        let mut gb = GainBuckets::new(3, 2);
        gb.insert(VertexId(0), 0);
        gb.insert(VertexId(1), 0);
        gb.insert(VertexId(2), 0);
        gb.remove(VertexId(1)); // list is 2 -> [1] -> 0
        assert_eq!(gb.len(), 2);
        assert_eq!(gb.select(|_| true), Some((VertexId(2), 0)));
        gb.remove(VertexId(2));
        assert_eq!(gb.select(|_| true), Some((VertexId(0), 0)));
    }

    #[test]
    fn update_moves_to_new_bucket_head() {
        let mut gb = GainBuckets::new(3, 5);
        gb.insert(VertexId(0), 1);
        gb.insert(VertexId(1), 4);
        gb.update(VertexId(0), 4);
        // v0 re-inserted at head of bucket 4
        assert_eq!(gb.select(|_| true), Some((VertexId(0), 4)));
    }

    #[test]
    fn adjust_applies_delta() {
        let mut gb = GainBuckets::new(2, 10);
        gb.insert(VertexId(0), -2);
        gb.adjust(VertexId(0), 5);
        assert_eq!(gb.key(VertexId(0)), 3);
        gb.adjust(VertexId(1), 5); // absent: no-op
        assert_eq!(gb.len(), 1);
    }

    #[test]
    fn negative_keys_work() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), -4);
        gb.insert(VertexId(1), -1);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), -1)));
    }

    #[test]
    fn decay_and_reinsert() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 4);
        gb.remove(VertexId(0));
        gb.decay_max();
        gb.insert(VertexId(1), -3);
        assert_eq!(gb.select(|_| true), Some((VertexId(1), -3)));
    }

    #[test]
    fn clear_empties() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 1);
        gb.clear();
        assert!(gb.is_empty());
        assert!(!gb.contains(VertexId(0)));
        assert_eq!(gb.select(|_| true), None);
    }

    #[test]
    fn double_remove_is_noop() {
        let mut gb = GainBuckets::new(2, 4);
        gb.insert(VertexId(0), 1);
        gb.remove(VertexId(0));
        gb.remove(VertexId(0));
        assert!(gb.is_empty());
    }
}
