//! Error type for the partitioning engines.

use std::error::Error;
use std::fmt;

use vlsi_hypergraph::{BalanceError, PartitionInputError, VertexId};

/// Error produced by the partitioning engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// No legal initial assignment exists (e.g. a vertex is heavier than
    /// every partition's capacity, or fixed vertices already overflow a
    /// partition).
    InfeasibleInstance {
        /// A vertex that could not be placed, if one was identified.
        vertex: Option<VertexId>,
        /// Human-readable detail.
        detail: String,
    },
    /// The balance constraint itself cannot hold the hypergraph.
    Balance(BalanceError),
    /// A supplied assignment was inconsistent with the hypergraph.
    Input(PartitionInputError),
    /// The engine only supports bipartitioning but was asked for more parts.
    UnsupportedPartCount {
        /// Parts requested.
        requested: usize,
        /// Parts supported by this engine.
        supported: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InfeasibleInstance { vertex, detail } => match vertex {
                Some(v) => write!(f, "infeasible instance at {v}: {detail}"),
                None => write!(f, "infeasible instance: {detail}"),
            },
            PartitionError::Balance(e) => write!(f, "balance constraint: {e}"),
            PartitionError::Input(e) => write!(f, "invalid input: {e}"),
            PartitionError::UnsupportedPartCount {
                requested,
                supported,
            } => write!(
                f,
                "{requested} partitions requested, this engine supports {supported}"
            ),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Balance(e) => Some(e),
            PartitionError::Input(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BalanceError> for PartitionError {
    fn from(e: BalanceError) -> Self {
        PartitionError::Balance(e)
    }
}

impl From<PartitionInputError> for PartitionError {
    fn from(e: PartitionInputError) -> Self {
        PartitionError::Input(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PartitionError::InfeasibleInstance {
            vertex: Some(VertexId(3)),
            detail: "does not fit".into(),
        };
        assert_eq!(e.to_string(), "infeasible instance at v3: does not fit");
        let e = PartitionError::UnsupportedPartCount {
            requested: 4,
            supported: 2,
        };
        assert!(e.to_string().contains("4 partitions"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<PartitionError>();
    }
}
