//! Multiway (k-way) partitioning: recursive bisection plus direct k-way
//! FM-style refinement.
//!
//! The paper's conclusions list "determining whether multiway partitioning
//! is as affected by fixed terminals" as an open question; this module
//! provides the machinery the experiment harness uses to ask it.

use vlsi_rng::Rng;

use vlsi_hypergraph::{
    induced_subgraph, BalanceConstraint, CutState, FixedVertices, Fixity, Hypergraph, Objective,
    PartId, PartSet, Partitioning, VertexId,
};
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::config::MultilevelConfig;
use crate::gain::{KwayGains, MoveLog};
use crate::multilevel::MultilevelPartitioner;
use crate::{PartitionError, PartitionResult};

use crate::parallel::GAIN_INIT_GRAIN;

/// Partitions `hg` into `k` blocks by recursive bisection with the
/// multilevel engine, honouring fixed vertices whose target partitions are
/// interpreted as final k-way block indices.
///
/// Block index ranges are split evenly (`⌈k/2⌉` to the left); at each level
/// the relevant vertices are extracted as an induced subgraph, fixities are
/// projected onto the two sides, and the bisection balance targets are
/// scaled by the number of blocks on each side.
///
/// # Errors
/// * [`PartitionError::UnsupportedPartCount`] if `k` is 0 or exceeds 64.
/// * [`PartitionError::InfeasibleInstance`] if a fixity names a partition
///   `≥ k` or a sub-bisection cannot be balanced.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{FixedVertices, HypergraphBuilder};
/// use vlsi_partition::kway::recursive_bisection;
/// use vlsi_partition::MultilevelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let fixed = FixedVertices::all_free(16);
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
/// let r = recursive_bisection(&hg, &fixed, 4, 0.1, &MultilevelConfig::default(), &mut rng)?;
/// assert_eq!(r.parts.len(), 16);
/// assert!(r.parts.iter().all(|p| p.0 < 4));
/// # Ok(())
/// # }
/// ```
pub fn recursive_bisection<R: Rng + ?Sized>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
) -> Result<PartitionResult, PartitionError> {
    recursive_bisection_with_sink(hg, fixed, k, tolerance, ml_config, rng, &NullSink)
}

/// Like [`recursive_bisection`], streaming the inner multilevel engines'
/// trace events into `sink`.
///
/// # Errors
/// Same as [`recursive_bisection`].
pub fn recursive_bisection_with_sink<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    recursive_bisection_cancellable(
        hg,
        fixed,
        k,
        tolerance,
        ml_config,
        rng,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`recursive_bisection_with_sink`], additionally threading `cancel`
/// into every inner multilevel run. The recursion itself always completes
/// (every vertex must receive a block), but once the token fires each
/// sub-bisection degenerates to a cheap legal split, so cancellation
/// latency stays bounded while the result remains a legal k-way partition.
///
/// # Errors
/// Same as [`recursive_bisection`].
#[allow(clippy::too_many_arguments)]
pub fn recursive_bisection_cancellable<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    if k == 0 || k > PartSet::MAX_PARTS {
        return Err(PartitionError::UnsupportedPartCount {
            requested: k,
            supported: PartSet::MAX_PARTS,
        });
    }
    for v in hg.vertices() {
        let bad = match fixed.fixity(v) {
            Fixity::Free => false,
            Fixity::Fixed(p) => p.index() >= k,
            Fixity::FixedAny(s) => s.iter().all(|p| p.index() >= k),
        };
        if bad {
            return Err(PartitionError::InfeasibleInstance {
                vertex: Some(v),
                detail: format!("fixity names a partition outside 0..{k}"),
            });
        }
    }

    let mut parts = vec![PartId(0); hg.num_vertices()];
    let active: Vec<VertexId> = hg.vertices().collect();
    rb_recurse(
        hg, fixed, &active, 0, k, tolerance, ml_config, rng, &mut parts, sink, cancel,
    )?;
    let cut = CutState::new(hg, k.max(1), &parts).cut();
    Ok(PartitionResult::new(parts, cut))
}

#[allow(clippy::too_many_arguments)]
fn rb_recurse<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    active: &[VertexId],
    lo: usize,
    hi: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    parts: &mut [PartId],
    sink: &S,
    cancel: &CancelToken,
) -> Result<(), PartitionError> {
    debug_assert!(lo < hi);
    if hi - lo == 1 {
        for &v in active {
            parts[v.index()] = PartId::from_index(lo);
        }
        return Ok(());
    }
    let mid = lo + (hi - lo).div_ceil(2);

    // Extract the sub-instance over the active vertices.
    let mut in_active = vec![false; hg.num_vertices()];
    for &v in active {
        in_active[v.index()] = true;
    }
    let sub = induced_subgraph(hg, 2, |v| in_active[v.index()]);

    // Project fixities onto the two sides of this bisection.
    let side_of = |p: PartId| -> Option<PartId> {
        let i = p.index();
        if i >= lo && i < mid {
            Some(PartId(0))
        } else if i >= mid && i < hi {
            Some(PartId(1))
        } else {
            None
        }
    };
    let mut sub_fixities = Vec::with_capacity(sub.hg.num_vertices());
    for &pv in &sub.to_parent {
        let f = match fixed.fixity(pv) {
            Fixity::Free => Fixity::Free,
            Fixity::Fixed(p) => match side_of(p) {
                Some(s) => Fixity::Fixed(s),
                None => {
                    return Err(PartitionError::InfeasibleInstance {
                        vertex: Some(pv),
                        detail: format!("fixed partition {p} outside active range {lo}..{hi}"),
                    })
                }
            },
            Fixity::FixedAny(set) => {
                let mut sides = PartSet::new();
                for p in set.iter() {
                    if let Some(s) = side_of(p) {
                        sides.insert(s);
                    }
                }
                match sides.len() {
                    0 => {
                        return Err(PartitionError::InfeasibleInstance {
                            vertex: Some(pv),
                            detail: "no allowed partition inside the active range".to_string(),
                        })
                    }
                    1 => Fixity::Fixed(sides.iter().next().expect("len 1")),
                    _ => Fixity::FixedAny(sides),
                }
            }
        };
        sub_fixities.push(f);
    }
    let sub_fixed = FixedVertices::from_fixities(sub_fixities);

    // Balance: side capacities proportional to the number of blocks. The
    // slack must admit the heaviest cell (macro cells would otherwise make
    // deep sub-bisections infeasible).
    let nr = sub.hg.num_resources();
    let blocks = (hi - lo) as f64;
    let frac_left = (mid - lo) as f64 / blocks;
    let wmax: Vec<u64> = (0..nr)
        .map(|r| {
            sub.hg
                .vertices()
                .map(|v| sub.hg.vertex_weights(v)[r])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut min = Vec::with_capacity(2 * nr);
    let mut max = Vec::with_capacity(2 * nr);
    for side in 0..2 {
        let frac = if side == 0 {
            frac_left
        } else {
            1.0 - frac_left
        };
        for (r, &wm) in wmax.iter().enumerate() {
            let target = sub.hg.total_weights()[r] as f64 * frac;
            let slack = (target * tolerance).max(wm as f64);
            min.push((target - slack).ceil().max(0.0) as u64);
            max.push((target + slack).floor() as u64);
        }
    }
    // Guarantee feasibility of the pair of maxima.
    for r in 0..nr {
        let total = sub.hg.total_weights()[r];
        while max[r] + max[nr + r] < total {
            max[r] += 1;
            max[nr + r] += 1;
        }
    }
    let balance = BalanceConstraint::explicit(2, nr, min, max)?;

    let ml = MultilevelPartitioner::new(*ml_config);
    let result = ml.run_cancellable(&sub.hg, &sub_fixed, &balance, rng, sink, cancel)?;

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (sv, &pv) in sub.to_parent.iter().enumerate() {
        if result.parts[sv] == PartId(0) {
            left.push(pv);
        } else {
            right.push(pv);
        }
    }
    rb_recurse(
        hg, fixed, &left, lo, mid, tolerance, ml_config, rng, parts, sink, cancel,
    )?;
    rb_recurse(
        hg, fixed, &right, mid, hi, tolerance, ml_config, rng, parts, sink, cancel,
    )?;
    Ok(())
}

/// Exact objective delta of moving `v` from its current part to `to`
/// (positive = improvement).
pub fn move_gain(
    hg: &Hypergraph,
    p: &Partitioning,
    v: VertexId,
    to: PartId,
    objective: Objective,
) -> i64 {
    let from = p.part_of(v);
    if from == to {
        return 0;
    }
    let cs = p.cut_state();
    let mut gain = 0i64;
    for &n in hg.vertex_nets(v) {
        let w = hg.net_weight(n) as i64;
        let size = hg.net_size(n) as u32;
        let in_from = cs.pins_in(n, from);
        let in_to = cs.pins_in(n, to);
        match objective {
            Objective::Cut => {
                // Net becomes uncut iff all pins except v are already in `to`.
                if in_to == size - 1 && cs.span(n) >= 2 {
                    gain += w;
                }
                // Net becomes cut iff it was entirely in `from` and |n| > 1.
                if in_from == size && size > 1 {
                    gain -= w;
                }
            }
            Objective::KMinus1 | Objective::Soed => {
                if in_from == 1 {
                    gain += w;
                }
                if in_to == 0 {
                    gain -= w;
                }
                if objective == Objective::Soed {
                    // SOED additionally pays the cut term.
                    if in_to == size - 1 && cs.span(n) >= 2 {
                        gain += w;
                    }
                    if in_from == size && size > 1 {
                        gain -= w;
                    }
                }
            }
        }
    }
    gain
}

/// One greedy k-way refinement pass over all movable vertices: repeatedly
/// applies the best feasible single-vertex move, each vertex at most once,
/// then restores the best balanced prefix. Returns the refined assignment
/// and its objective value.
///
/// Selection runs on the shared [`KwayGains`] container (one gain-bucket
/// array per target part): every allowed `(vertex, target)` move is a
/// keyed entry, the pass repeatedly takes the globally best feasible one,
/// and after each move only the moved vertex's unlocked neighbours are
/// re-keyed — the same delta-maintenance discipline as the 2-way FM
/// engine.
///
/// # Errors
/// Returns [`PartitionError::Input`] if `initial` is inconsistent with `hg`
/// or violates a fixity.
pub fn refine_pass(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
) -> Result<PartitionResult, PartitionError> {
    refine_pass_with_sink(hg, fixed, balance, initial, objective, 0, &NullSink)
}

/// Like [`refine_pass`], emitting [`Event::KwayPassStart`],
/// [`Event::KwayMove`], and [`Event::KwayPassEnd`] into `sink`. `pass` is
/// the 0-based pass index stamped on the events (callers looping passes
/// supply it; single passes use 0).
///
/// # Errors
/// Same as [`refine_pass`].
pub fn refine_pass_with_sink<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
    pass: u32,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    refine_pass_cancellable(
        hg,
        fixed,
        balance,
        initial,
        objective,
        pass,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`refine_pass_with_sink`], additionally polling `cancel` every
/// [`CHECK_INTERVAL`] moves; the best-prefix rollback makes stopping
/// mid-pass safe.
///
/// # Errors
/// Same as [`refine_pass`].
#[allow(clippy::too_many_arguments)]
pub fn refine_pass_cancellable<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
    pass: u32,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    refine_pass_threaded(
        hg, fixed, balance, initial, objective, pass, sink, cancel, 1,
    )
}

/// The shared gain-container setup of the sequential k-way pass and the
/// parallel round engine (`parallel::refine`).
pub(crate) struct KwayGainSetup {
    /// Every allowed `(vertex, target)` move of the frozen assignment,
    /// keyed by its exact gain.
    pub gains: KwayGains,
    /// Per-resource relaxation: the largest movable vertex weight, the
    /// slack the sequential pass grants destination overshoot.
    pub relax: Vec<u64>,
    /// Vertices with at least one allowed move.
    pub movable: u64,
    /// Entries inserted (the setup's gain-container operation count).
    pub inserts: u64,
}

/// Builds the [`KwayGainSetup`] for assignment `p`: relaxation vector,
/// SOED-safe key bound, and a gain container holding every allowed move.
///
/// Initial gains are pure reads of the frozen assignment, so with a thread
/// budget they are precomputed into a flat `vertex * k + target` table;
/// the bucket insertions always replay in the sequential order, keeping
/// the setup thread-count invariant.
pub(crate) fn build_kway_gains(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    p: &Partitioning,
    k: usize,
    objective: Objective,
    threads: usize,
) -> KwayGainSetup {
    let nr = hg.num_resources();
    let mut relax = vec![0u64; nr];
    for v in hg.vertices() {
        if !fixed.fixity(v).is_immovable() {
            for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
                relax[r] = relax[r].max(w);
            }
        }
    }

    // Under SOED a single move can change both the span and the cut term
    // of every incident net, so keys span twice the incident weight.
    let key_bound: i64 = 2 * hg
        .vertices()
        .filter(|v| !fixed.fixity(*v).is_immovable())
        .map(|v| {
            hg.vertex_nets(v)
                .iter()
                .map(|&n| hg.net_weight(n) as i64)
                .sum::<i64>()
        })
        .max()
        .unwrap_or(0)
        .max(1);

    let workers =
        crate::parallel::effective_threads(threads, hg.num_vertices() * k, GAIN_INIT_GRAIN);
    let pre: Option<Vec<i64>> = (workers > 1).then(|| {
        let mut out = vec![0i64; hg.num_vertices() * k];
        crate::parallel::par_fill(&mut out, workers, |off, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                let idx = off + i;
                let v = VertexId((idx / k) as u32);
                let fx = fixed.fixity(v);
                if fx.is_immovable() {
                    continue;
                }
                let to = PartId::from_index(idx % k);
                if to == p.part_of(v) || !fx.allows(to) {
                    continue;
                }
                *slot = move_gain(hg, p, v, to, objective);
            }
        });
        out
    });

    let mut gains = KwayGains::new(k, hg.num_vertices(), key_bound);
    let mut inserts = 0u64;
    let mut movable = 0u64;
    for v in hg.vertices() {
        let fx = fixed.fixity(v);
        if fx.is_immovable() {
            continue;
        }
        let from = p.part_of(v);
        let mut any = false;
        for t in 0..k {
            let to = PartId::from_index(t);
            if to == from || !fx.allows(to) {
                continue;
            }
            let g = match &pre {
                Some(table) => table[v.index() * k + t],
                None => move_gain(hg, p, v, to, objective),
            };
            gains.insert(v, to, g);
            any = true;
            inserts += 1;
        }
        if any {
            movable += 1;
        }
    }
    KwayGainSetup {
        gains,
        relax,
        movable,
        inserts,
    }
}

/// [`refine_pass_cancellable`] with a worker-thread budget. The budget
/// selects between two deterministic regimes:
///
/// * `threads <= 1` — the sequential LIFO pass below, bit-for-bit what
///   single-threaded callers have always computed. The budget is also
///   forwarded to the (thread-count invariant) gain setup.
/// * `threads >= 2` — the synchronous-round engine
///   ([`parallel::refine::refine_pass_rounds`](crate::parallel::refine::refine_pass_rounds)),
///   whose output is identical for **every** budget ≥ 2 (and for any
///   worker count; see [`refine_pass_parallel`]) but is a different
///   algorithm than the sequential pass, so the two regimes may return
///   different (equally legal) solutions.
///
/// The dispatch keys on the *requested* budget, never on instance size,
/// so which regime runs is a pure function of the caller's configuration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_pass_threaded<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
    pass: u32,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    if threads > 1 {
        return crate::parallel::refine::refine_pass_rounds(
            hg, fixed, balance, initial, objective, pass, sink, cancel, threads,
        );
    }
    let k = balance.num_parts();
    let mut p = Partitioning::from_parts_fixed(hg, k, initial, fixed)?;
    let nr = hg.num_resources();

    let setup = build_kway_gains(hg, fixed, &p, k, objective, threads);
    let mut gains = setup.gains;
    let relax = setup.relax;
    let movable = setup.movable;
    let mut bucket_ops = if S::ENABLED { setup.inserts } else { 0 };

    let value_before = p.cut_value(objective);
    if S::ENABLED {
        sink.record(&Event::KwayPassStart {
            pass,
            value: value_before,
            movable,
        });
    }

    let mut locked = vec![false; hg.num_vertices()];
    let mut log = MoveLog::new();
    let mut best_val = value_before;
    // Dedup stamps for the per-move neighbourhood refresh.
    let mut stamp = vec![0u32; hg.num_vertices()];
    let mut epoch = 0u32;

    loop {
        if !cancel.is_never() && log.len().is_multiple_of(CHECK_INTERVAL) && cancel.is_cancelled() {
            break;
        }
        let selected = {
            let loads = p.loads();
            gains.select_best(|v, to| {
                // Relaxed feasibility: the destination may overshoot its
                // maximum by the largest movable vertex weight.
                hg.vertex_weights(v)
                    .iter()
                    .enumerate()
                    .all(|(r, &w)| loads[to.index() * nr + r] + w <= balance.max(to, r) + relax[r])
            })
        };
        let Some((v, to, gain)) = selected else {
            break;
        };
        gains.remove_all(v);
        gains.decay_max();
        locked[v.index()] = true;
        let before = p.cut_value(objective) as i64;
        let from = p.move_vertex(hg, v, to);
        log.record(v, from);
        let val = p.cut_value(objective);
        debug_assert_eq!(before - gain, val as i64, "gain mispredicted for {v}");
        if S::ENABLED {
            bucket_ops += 1; // the remove_all above
            sink.record(&Event::KwayMove {
                pass,
                vertex: v.index() as u64,
                from: from.index() as u32,
                to: to.index() as u32,
                gain,
                value: val,
            });
        }
        if balance.is_satisfied(p.loads()) && val < best_val {
            best_val = val;
            log.mark_best();
        }
        // Re-key the neighbourhood whose gains the move may have changed.
        epoch += 1;
        for &n in hg.vertex_nets(v) {
            for &u in hg.net_pins(n) {
                if u == v || locked[u.index()] || stamp[u.index()] == epoch {
                    continue;
                }
                stamp[u.index()] = epoch;
                let fx = fixed.fixity(u);
                if fx.is_immovable() {
                    continue;
                }
                let uf = p.part_of(u);
                for t in 0..k {
                    let tt = PartId::from_index(t);
                    if tt == uf || !fx.allows(tt) {
                        continue;
                    }
                    gains.update(u, tt, move_gain(hg, &p, u, tt, objective));
                    if S::ENABLED {
                        bucket_ops += 1;
                    }
                }
            }
        }
    }

    let moves_made = log.len();
    let best_len = log.best_len();
    log.rollback_to_best(|v, from| {
        p.move_vertex(hg, v, from);
    });
    let cut = p.cut_value(objective);
    debug_assert_eq!(cut, best_val);
    if S::ENABLED {
        sink.record(&Event::KwayPassEnd {
            pass,
            moves: moves_made as u64,
            best_prefix: best_len as u64,
            value_before,
            value_after: cut,
            bucket_ops,
        });
    }
    Ok(PartitionResult::new(p.into_parts(), cut))
}

/// One synchronous-round parallel refinement pass (the `threads >= 2`
/// regime of the k-way engines), exposed directly so tests and benches can
/// pin its core contract: **the returned assignment is byte-identical for
/// every `threads` value, including 1** — the worker count only chunks a
/// pure proposal scan, never the merge or the apply order. This is
/// stronger than the two-regime dispatch of [`refine_pass`]'s internal
/// threaded variant (which switches to the sequential pass at budget ≤ 1)
/// and is what `tests/determinism.rs` exercises at 1/2/4/8 threads.
///
/// Every applied move strictly improves the objective and is re-validated
/// against fixity and balance at apply time, so the result never worsens
/// `initial` and never introduces a new balance violation. See the
/// `parallel::refine` module docs for the protocol and
/// `docs/ARCHITECTURE.md` for its determinism proof obligations.
///
/// # Errors
/// Returns [`PartitionError::Input`] if `initial` is inconsistent with `hg`
/// or violates a fixity.
pub fn refine_pass_parallel(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    crate::parallel::refine::refine_pass_rounds(
        hg,
        fixed,
        balance,
        initial,
        objective,
        0,
        &NullSink,
        &CancelToken::never(),
        threads,
    )
}

/// The pre-container k-way pass: a lazy max-heap with re-queue on stale
/// gains. Retained as the suite's **test oracle** — an independent
/// implementation that recomputes every candidate's gain from scratch
/// (`best_move_of`) instead of delta-maintaining a [`KwayGains`]
/// container, so agreement with [`refine_pass`] and legality of its output
/// cross-check the container's bookkeeping. `tests/refinement_equivalence.rs`
/// runs it across the property-test corpus, and the `gain_container`
/// benchmark keeps it honest as the performance baseline.
///
/// It is deliberately **not** in any production dispatch path: engines
/// reach refinement only through [`refine_pass`]'s threaded internals, and
/// new code should call [`refine_pass`] / [`refine_pass_parallel`].
///
/// # Errors
/// Returns [`PartitionError::Input`] if `initial` is inconsistent with `hg`
/// or violates a fixity.
pub fn refine_pass_reference(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    objective: Objective,
) -> Result<PartitionResult, PartitionError> {
    use std::collections::BinaryHeap;

    let k = balance.num_parts();
    let mut p = Partitioning::from_parts_fixed(hg, k, initial, fixed)?;
    let nr = hg.num_resources();

    let mut relax = vec![0u64; nr];
    for v in hg.vertices() {
        if !fixed.fixity(v).is_immovable() {
            for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
                relax[r] = relax[r].max(w);
            }
        }
    }

    // Best feasible move of a single vertex under the current state.
    let best_move_of = |p: &Partitioning, v: VertexId| -> Option<(i64, PartId)> {
        let from = p.part_of(v);
        let ws = hg.vertex_weights(v);
        let mut best: Option<(i64, PartId)> = None;
        for t in 0..k {
            let to = PartId::from_index(t);
            if to == from || !fixed.fixity(v).allows(to) {
                continue;
            }
            let feasible =
                (0..nr).all(|r| p.loads()[t * nr + r] + ws[r] <= balance.max(to, r) + relax[r]);
            if !feasible {
                continue;
            }
            let g = move_gain(hg, p, v, to, objective);
            if best.map(|(bg, _)| g > bg).unwrap_or(true) {
                best = Some((g, to));
            }
        }
        best
    };

    let mut locked = vec![false; hg.num_vertices()];
    let mut heap: BinaryHeap<(i64, u32)> = BinaryHeap::new();
    for v in hg.vertices() {
        if fixed.fixity(v).is_immovable() {
            continue;
        }
        if let Some((g, _)) = best_move_of(&p, v) {
            heap.push((g, v.0));
        }
    }

    let mut log: Vec<(VertexId, PartId)> = Vec::new();
    let mut best_val = p.cut_value(objective);
    let mut best_len = 0usize;

    while let Some((stale_gain, raw)) = heap.pop() {
        let v = VertexId(raw);
        if locked[v.index()] {
            continue;
        }
        // Lazy re-validation: the stored gain may be stale.
        let Some((gain, to)) = best_move_of(&p, v) else {
            continue; // no feasible move right now; drop the candidate
        };
        if gain < stale_gain {
            // Gain dropped since the push; re-queue at its true priority.
            heap.push((gain, raw));
            continue;
        }
        let before = p.cut_value(objective) as i64;
        let from = p.move_vertex(hg, v, to);
        locked[v.index()] = true;
        log.push((v, from));
        let val = p.cut_value(objective);
        debug_assert_eq!(before - gain, val as i64, "gain mispredicted for {v}");
        if balance.is_satisfied(p.loads()) && val < best_val {
            best_val = val;
            best_len = log.len();
        }
        // Refresh the neighbourhood whose gains the move may have changed.
        for &n in hg.vertex_nets(v) {
            for &u in hg.net_pins(n) {
                if u != v && !locked[u.index()] && !fixed.fixity(u).is_immovable() {
                    if let Some((g, _)) = best_move_of(&p, u) {
                        heap.push((g, u.0));
                    }
                }
            }
        }
    }
    for &(v, from) in log[best_len..].iter().rev() {
        p.move_vertex(hg, v, from);
    }
    let cut = p.cut_value(objective);
    Ok(PartitionResult::new(p.into_parts(), cut))
}

/// Direct k-way multilevel partitioning: coarsen with the fixity-aware
/// heavy-edge matcher, solve the coarsest instance by recursive bisection,
/// then project and refine with [`refine`] at every level.
///
/// Compared to plain [`recursive_bisection`], the k-way refinement at the
/// finer levels can move vertices between *any* pair of blocks, repairing
/// decisions the bisection hierarchy locked in.
///
/// # Errors
/// Propagates the component engines' failures.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{FixedVertices, HypergraphBuilder};
/// use vlsi_partition::kway::multilevel_kway;
/// use vlsi_partition::MultilevelConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..32).map(|_| b.add_vertex(1)).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let fixed = FixedVertices::all_free(32);
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(2);
/// let cfg = MultilevelConfig { coarsest_size: 8, ..MultilevelConfig::default() };
/// let r = multilevel_kway(&hg, &fixed, 4, 0.1, &cfg, &mut rng)?;
/// assert_eq!(r.cut, 3); // a chain 4-sects with three cut nets
/// # Ok(())
/// # }
/// ```
pub fn multilevel_kway<R: Rng + ?Sized>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
) -> Result<PartitionResult, PartitionError> {
    multilevel_kway_with_sink(hg, fixed, k, tolerance, ml_config, rng, &NullSink)
}

/// Like [`multilevel_kway`], bracketing each coarsening level with
/// [`Event::LevelStart`]/[`Event::LevelEnd`] and streaming the refinement
/// passes' k-way events into `sink`.
///
/// # Errors
/// Same as [`multilevel_kway`].
pub fn multilevel_kway_with_sink<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    multilevel_kway_cancellable(
        hg,
        fixed,
        k,
        tolerance,
        ml_config,
        rng,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`multilevel_kway_with_sink`], additionally polling `cancel`. As in
/// the 2-way multilevel engine, coarsening stops early, the coarsest solve
/// degenerates to a cheap legal split, and the projection back to the
/// original hypergraph always completes; one [`Event::Cancelled`] (stage
/// `level`) records the early termination.
///
/// # Errors
/// Same as [`multilevel_kway`].
#[allow(clippy::too_many_arguments)]
pub fn multilevel_kway_cancellable<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    k: usize,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    if k == 0 || k > PartSet::MAX_PARTS {
        return Err(PartitionError::UnsupportedPartCount {
            requested: k,
            supported: PartSet::MAX_PARTS,
        });
    }
    let balance = BalanceConstraint::even(
        k,
        hg.total_weights(),
        vlsi_hypergraph::Tolerance::Relative(tolerance),
    );
    multilevel_kway_inner(
        hg,
        fixed,
        &balance,
        Objective::Cut,
        tolerance,
        false,
        ml_config,
        rng,
        sink,
        cancel,
    )
}

/// Direct multilevel k-way partitioning against an arbitrary
/// [`BalanceConstraint`] (per-part, per-resource capacity vectors) and
/// objective — the heterogeneous entry point behind
/// [`DirectKway`](crate::DirectKway) when the caller's balance is not the
/// uniform even split or the objective is not plain cut.
///
/// The multilevel schedule is the same as [`multilevel_kway`]: heavy-edge
/// coarsening (vector weights accumulate exactly, so the caller's
/// constraint is valid verbatim at every level), recursive bisection on
/// the coarsest graph, then threaded FM refinement per level — every
/// refinement pass scores `objective` and enforces the full vector
/// constraint. Because the coarsest solve targets an even split, its
/// result is deterministically re-legalized against `balance` (the
/// warm-start repair) before refinement; the multi-dimensional
/// heavy-vertex guard caps every cluster's weight *vector* during
/// coarsening so that repair stays possible ("Vertex Weights Revisited"
/// pathology).
///
/// `tolerance` only shapes the coarsest even-split solve; legality is
/// judged exclusively by `balance`.
///
/// # Errors
/// * [`PartitionError::UnsupportedPartCount`] if `balance.num_parts()` is
///   0 or exceeds 64.
/// * [`PartitionError::InfeasibleInstance`] when no legal assignment is
///   reachable (capacities too tight for the instance or its fixed
///   vertices).
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{FixedVertices, HypergraphBuilder, Objective, PartCapacities};
/// use vlsi_partition::kway::multilevel_kway_constrained;
/// use vlsi_partition::{CancelToken, MultilevelConfig};
/// use vlsi_trace::NullSink;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_resources(2);
/// let v: Vec<_> = (0..16).map(|i| b.add_vertex_multi(&[1, (i % 2) as u64]).unwrap()).collect();
/// for w in v.windows(2) {
///     b.add_net(1, [w[0], w[1]])?;
/// }
/// let hg = b.build()?;
/// let fixed = FixedVertices::all_free(16);
/// let caps = PartCapacities::uniform(4, &[6, 3]);
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(7);
/// let cfg = MultilevelConfig { coarsest_size: 8, ..MultilevelConfig::default() };
/// let r = multilevel_kway_constrained(
///     &hg, &fixed, &caps.to_balance(), Objective::KMinus1, 0.1, &cfg,
///     &mut rng, &NullSink, &CancelToken::never(),
/// )?;
/// assert_eq!(r.parts.len(), 16);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub fn multilevel_kway_constrained<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    tolerance: f64,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    let k = balance.num_parts();
    if k == 0 || k > PartSet::MAX_PARTS {
        return Err(PartitionError::UnsupportedPartCount {
            requested: k,
            supported: PartSet::MAX_PARTS,
        });
    }
    balance
        .check_feasible(hg.total_weights())
        .map_err(PartitionError::Balance)?;
    multilevel_kway_inner(
        hg, fixed, balance, objective, tolerance, true, ml_config, rng, sink, cancel,
    )
}

/// Shared multilevel k-way driver. The uniform path
/// ([`multilevel_kway_cancellable`]) passes the even-split constraint with
/// `legalize = false` — coarsening preserves per-resource totals exactly,
/// so the even split recomputed at any level equals the top-level one and
/// this routing is bit-for-bit the historical behavior. The constrained
/// path passes the caller's vector balance with `legalize = true`.
#[allow(clippy::too_many_arguments)]
fn multilevel_kway_inner<R: Rng + ?Sized, S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    objective: Objective,
    tolerance: f64,
    legalize: bool,
    ml_config: &MultilevelConfig,
    rng: &mut R,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    use crate::multilevel::{coarsen_once, CoarsenParams, Level};

    let k = balance.num_parts();
    let cluster_cap = |total: u64| -> u64 {
        ((total as f64) * ml_config.max_cluster_fraction / (k as f64 / 2.0))
            .ceil()
            .max(1.0) as u64
    };
    let params = CoarsenParams {
        max_cluster_weight: cluster_cap(hg.total_weight()),
        // With several resource dimensions, cap the cluster weight
        // *vector* too: a cluster hoarding one scarce resource is exactly
        // the heavy-vertex pathology that makes coarse levels
        // unbalanceable. Single-resource instances keep the scalar-only
        // guard (empty vector) bit-for-bit.
        max_cluster_weights: if hg.num_resources() > 1 {
            hg.total_weights().iter().map(|&t| cluster_cap(t)).collect()
        } else {
            Vec::new()
        },
        max_net_size_for_matching: 64,
        max_fixed_part_weight: (0..k)
            .map(|p| balance.max(PartId::from_index(p), 0))
            .collect(),
        allow_free_fixed_merge: false,
        threads: ml_config.threads,
    };

    let mut levels: Vec<Level> = Vec::new();
    loop {
        let (cur_hg, cur_fixed) = match levels.last() {
            Some(l) => (&l.hg, &l.fixed),
            None => (hg, fixed),
        };
        if cur_hg.num_vertices() <= ml_config.coarsest_size.max(4 * k) || cancel.is_cancelled() {
            break;
        }
        match coarsen_once(cur_hg, cur_fixed, &params, ml_config.min_shrink, None, rng) {
            Some(level) => {
                if S::ENABLED {
                    sink.record(&Event::LevelStart {
                        level: levels.len() as u32 + 1,
                        vertices: level.hg.num_vertices() as u64,
                        nets: level.hg.num_nets() as u64,
                    });
                }
                levels.push(level);
            }
            None => break,
        }
    }

    let (coarsest_hg, coarsest_fixed) = match levels.last() {
        Some(l) => (&l.hg, &l.fixed),
        None => (hg, fixed),
    };
    let initial = recursive_bisection_cancellable(
        coarsest_hg,
        coarsest_fixed,
        k,
        tolerance,
        ml_config,
        rng,
        sink,
        cancel,
    )?;
    // The coarsest solve targets an even split; under an arbitrary vector
    // constraint it may be illegal, so repair it deterministically before
    // refining. Projection preserves per-part loads exactly, so legality
    // established at any level is invariant down the hierarchy. Cluster
    // granularity can leave a tight constraint unreachable this high up
    // (no single cluster move shrinks the overfull part), so a stuck
    // repair is tolerated here and retried after each uncoarsening, where
    // vertices are finer; only the finest level treats it as infeasible.
    let mut fully_legal = !legalize;
    let initial_parts = if legalize {
        let (p, _, legal) = crate::warmstart::legalize_assignment_lenient(
            coarsest_hg,
            coarsest_fixed,
            balance,
            &initial.parts,
        )?;
        fully_legal = legal;
        p
    } else {
        initial.parts
    };
    let r = refine_threaded(
        coarsest_hg,
        coarsest_fixed,
        balance,
        initial_parts,
        objective,
        4,
        sink,
        cancel,
        ml_config.threads,
    )?;
    if S::ENABLED {
        sink.record(&Event::LevelEnd {
            level: levels.len() as u32,
            vertices: coarsest_hg.num_vertices() as u64,
            nets: coarsest_hg.num_nets() as u64,
            cut: r.cut,
        });
    }
    let mut parts = r.parts;
    for i in (0..levels.len()).rev() {
        let mut fine_parts = levels[i].project(&parts);
        let (fine_hg, fine_fixed) = if i == 0 {
            (hg, fixed)
        } else {
            (&levels[i - 1].hg, &levels[i - 1].fixed)
        };
        if !fully_legal {
            let (p, _, legal) = crate::warmstart::legalize_assignment_lenient(
                fine_hg,
                fine_fixed,
                balance,
                &fine_parts,
            )?;
            fine_parts = p;
            fully_legal = legal;
        }
        let r = refine_threaded(
            fine_hg,
            fine_fixed,
            balance,
            fine_parts,
            objective,
            4,
            sink,
            cancel,
            ml_config.threads,
        )?;
        if S::ENABLED {
            sink.record(&Event::LevelEnd {
                level: i as u32,
                vertices: fine_hg.num_vertices() as u64,
                nets: fine_hg.num_nets() as u64,
                cut: r.cut,
            });
        }
        parts = r.parts;
    }
    if !fully_legal {
        // Finest level: the repair must succeed now or the instance is
        // genuinely infeasible under `balance` — the strict variant
        // reports per-part loads against the maxima. Refine once more so
        // the repair moves get locally re-optimized.
        let (p, _) = crate::warmstart::legalize_assignment(hg, fixed, balance, &parts)?;
        parts = refine_threaded(
            hg,
            fixed,
            balance,
            p,
            objective,
            4,
            sink,
            cancel,
            ml_config.threads,
        )?
        .parts;
    }
    let cut = CutState::new(hg, k, &parts).value(objective);
    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::Level,
            value: cut,
        });
    }
    Ok(PartitionResult::new(parts, cut))
}

/// Runs [`refine_pass`] repeatedly until a pass stops improving (at most
/// `max_passes`).
///
/// # Errors
/// Propagates [`refine_pass`] errors.
pub fn refine(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    parts: Vec<PartId>,
    objective: Objective,
    max_passes: usize,
) -> Result<PartitionResult, PartitionError> {
    refine_with_sink(hg, fixed, balance, parts, objective, max_passes, &NullSink)
}

/// Like [`refine`], streaming each pass's k-way events into `sink`.
///
/// # Errors
/// Propagates [`refine_pass_with_sink`] errors.
pub fn refine_with_sink<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    parts: Vec<PartId>,
    objective: Objective,
    max_passes: usize,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    refine_cancellable(
        hg,
        fixed,
        balance,
        parts,
        objective,
        max_passes,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`refine_with_sink`], additionally polling `cancel` at pass
/// boundaries (and inside each pass every [`CHECK_INTERVAL`] moves). A
/// cancelled run records one [`Event::Cancelled`] (stage `kway_pass`) and
/// returns the best assignment reached so far.
///
/// # Errors
/// Propagates [`refine_pass_with_sink`] errors.
#[allow(clippy::too_many_arguments)]
pub fn refine_cancellable<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    parts: Vec<PartId>,
    objective: Objective,
    max_passes: usize,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    refine_threaded(
        hg, fixed, balance, parts, objective, max_passes, sink, cancel, 1,
    )
}

/// [`refine_cancellable`] with a worker-thread budget, looping
/// [`refine_pass_threaded`] until a pass stops improving. The budget
/// selects the refinement regime per that function's contract: budget ≤ 1
/// replays the sequential pass bit-for-bit, budget ≥ 2 runs the
/// synchronous-round engine and is byte-identical across all budgets ≥ 2.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_threaded<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    mut parts: Vec<PartId>,
    objective: Objective,
    max_passes: usize,
    sink: &S,
    cancel: &CancelToken,
    threads: usize,
) -> Result<PartitionResult, PartitionError> {
    let mut best = CutState::new(hg, balance.num_parts(), &parts).value(objective);
    if !cancel.is_cancelled() {
        for pass in 0..max_passes {
            let r = refine_pass_threaded(
                hg,
                fixed,
                balance,
                parts.clone(),
                objective,
                pass as u32,
                sink,
                cancel,
                threads,
            )?;
            if r.cut < best {
                best = r.cut;
                parts = r.parts;
            } else {
                break;
            }
            if cancel.is_cancelled() {
                break;
            }
        }
    }
    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::KwayPass,
            value: best,
        });
    }
    Ok(PartitionResult::new(parts, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{HypergraphBuilder, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    /// `c` cliques of size `s`, chained by single bridge nets.
    fn cliques(c: usize, s: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..c * s).map(|_| b.add_vertex(1)).collect();
        for g in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_net(1, [v[g * s + i], v[g * s + j]]).unwrap();
                }
            }
        }
        for g in 1..c {
            b.add_net(1, [v[(g - 1) * s], v[g * s]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn four_way_rb_on_four_cliques() {
        let hg = cliques(4, 5);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let cfg = MultilevelConfig {
            coarsest_size: 10,
            ..MultilevelConfig::default()
        };
        let r = recursive_bisection(&hg, &fixed, 4, 0.1, &cfg, &mut rng).unwrap();
        assert_eq!(r.cut, 3, "only the three bridges should be cut");
        // Each clique lands in exactly one block.
        for g in 0..4 {
            let p0 = r.parts[g * 5];
            for i in 1..5 {
                assert_eq!(r.parts[g * 5 + i], p0);
            }
        }
    }

    #[test]
    fn rb_respects_kway_fixities() {
        let hg = cliques(4, 4);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        fixed.fix(VertexId(0), PartId(3));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let cfg = MultilevelConfig {
            coarsest_size: 8,
            ..MultilevelConfig::default()
        };
        let r = recursive_bisection(&hg, &fixed, 4, 0.2, &cfg, &mut rng).unwrap();
        assert_eq!(r.parts[0], PartId(3));
    }

    #[test]
    fn rb_k1_puts_everything_in_part0() {
        let hg = cliques(2, 3);
        let fixed = FixedVertices::all_free(6);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let r = recursive_bisection(&hg, &fixed, 1, 0.1, &MultilevelConfig::default(), &mut rng)
            .unwrap();
        assert!(r.parts.iter().all(|&p| p == PartId(0)));
        assert_eq!(r.cut, 0);
    }

    #[test]
    fn rb_rejects_bad_k() {
        let hg = cliques(1, 3);
        let fixed = FixedVertices::all_free(3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(matches!(
            recursive_bisection(&hg, &fixed, 0, 0.1, &MultilevelConfig::default(), &mut rng),
            Err(PartitionError::UnsupportedPartCount { .. })
        ));
        let mut fixed = FixedVertices::all_free(3);
        fixed.fix(VertexId(0), PartId(7));
        assert!(matches!(
            recursive_bisection(&hg, &fixed, 2, 0.1, &MultilevelConfig::default(), &mut rng),
            Err(PartitionError::InfeasibleInstance { .. })
        ));
    }

    #[test]
    fn move_gain_matches_actual_delta() {
        let hg = cliques(2, 4);
        let parts: Vec<PartId> = (0..8).map(|i| PartId(i / 4)).collect();
        let p = Partitioning::from_parts(&hg, 2, parts.clone()).unwrap();
        for v in hg.vertices() {
            for t in 0..2 {
                let to = PartId(t);
                if to == p.part_of(v) {
                    continue;
                }
                for obj in [Objective::Cut, Objective::KMinus1, Objective::Soed] {
                    let g = move_gain(&hg, &p, v, to, obj);
                    let mut q = p.clone();
                    let before = q.cut_value(obj) as i64;
                    q.move_vertex(&hg, v, to);
                    let after = q.cut_value(obj) as i64;
                    assert_eq!(before - after, g, "{v} -> {to} under {obj}");
                }
            }
        }
    }

    #[test]
    fn refine_improves_a_bad_assignment() {
        let hg = cliques(2, 5);
        let fixed = FixedVertices::all_free(10);
        let balance = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
        // Interleave cliques: terrible initial cut.
        let initial: Vec<PartId> = (0..10).map(|i| PartId(i % 2)).collect();
        let r = refine(&hg, &fixed, &balance, initial, Objective::Cut, 10).unwrap();
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn multilevel_kway_finds_clique_structure() {
        let hg = cliques(4, 6);
        let fixed = FixedVertices::all_free(hg.num_vertices());
        let cfg = MultilevelConfig {
            coarsest_size: 8,
            ..MultilevelConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let r = multilevel_kway(&hg, &fixed, 4, 0.05, &cfg, &mut rng).unwrap();
        assert_eq!(r.cut, 3, "only the three bridges should be cut");
        for t in 0..4 {
            assert_eq!(r.parts.iter().filter(|p| p.0 == t).count(), 6);
        }
    }

    #[test]
    fn multilevel_kway_honours_fixities() {
        let hg = cliques(4, 5);
        let mut fixed = FixedVertices::all_free(hg.num_vertices());
        fixed.fix(VertexId(0), PartId(2));
        let cfg = MultilevelConfig {
            coarsest_size: 8,
            ..MultilevelConfig::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = multilevel_kway(&hg, &fixed, 4, 0.2, &cfg, &mut rng).unwrap();
        assert_eq!(r.parts[0], PartId(2));
    }

    #[test]
    fn refine_multiway_with_fixed() {
        let hg = cliques(3, 4);
        let mut fixed = FixedVertices::all_free(12);
        fixed.fix(VertexId(0), PartId(2));
        let balance = BalanceConstraint::even(3, &[12], Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..12)
            .map(|i| if i == 0 { PartId(2) } else { PartId(i % 3) })
            .collect();
        let r = refine(&hg, &fixed, &balance, initial, Objective::KMinus1, 10).unwrap();
        assert_eq!(r.parts[0], PartId(2));
        // Every part must hold exactly 4 vertices under zero tolerance.
        for t in 0..3 {
            assert_eq!(r.parts.iter().filter(|p| p.0 == t).count(), 4);
        }
    }
}
