//! Multilevel FM hypergraph partitioning with fixed vertices.
//!
//! This crate is the primary contribution of the reproduction of
//! *Hypergraph Partitioning with Fixed Vertices* (Alpert, Caldwell, Kahng,
//! Markov; DAC 1999 / IEEE TCAD 19(2), Feb. 2000). It implements:
//!
//! * A flat Fiduccia–Mattheyses bipartitioner ([`fm::BipartFm`]) with
//!   gain-bucket selection, LIFO tie-breaking, the CLIP variant of Dutt &
//!   Deng, full fixed-vertex awareness, balance constraints, per-pass
//!   statistics (Table II of the paper) and hard pass cutoffs (Table III).
//! * A multilevel partitioner ([`multilevel::MultilevelPartitioner`]):
//!   heavy-edge-matching / first-choice coarsening that respects fixities,
//!   FM at the coarsest level, refinement during uncoarsening, and optional
//!   V-cycling (which the paper found to be a net loss — kept for ablation).
//! * A multistart driver ([`multistart::Multistart`]) reproducing the
//!   paper's 1/2/4/8-start protocol, with an iterated-multilevel quality
//!   phase ([`quality`]): V-cycles over the best solution and ensemble
//!   recombination over the retained top-N starts.
//! * A k-way FM extension ([`kway`]) for the paper's future-work question
//!   of whether multiway partitioning is as affected by fixed terminals.
//! * The terminal-clustering equivalence transform
//!   ([`terminal_cluster::cluster_terminals`]) from the paper's conclusions.
//! * A unifying trait layer ([`Partitioner`] / [`Refiner`]) over every
//!   engine — flat FM, multilevel, Kernighan–Lin, simulated annealing and
//!   both k-way strategies — with a by-name [`EngineConfig`] registry, so
//!   drivers need no engine-specific glue.
//! * A deterministic [`parallel`] execution layer behind the multilevel
//!   and FM hot phases: results are byte-identical at any thread count.
//!
//! Every engine run takes a [`RunCtx`] bundling the RNG, a
//! [`trace::Sink`] receiving structured [`trace`] events (pass brackets,
//! committed moves, coarsening levels, multistart records), a
//! [`CancelToken`], and a thread budget; the defaults built by
//! [`RunCtx::new`] use [`trace::NullSink`], which compiles the
//! instrumentation out entirely.
//!
//! # Quickstart
//!
//! ```
//! use vlsi_rng::SeedableRng;
//! use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
//! use vlsi_partition::{MultilevelConfig, MultilevelPartitioner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let v: Vec<_> = (0..8).map(|_| b.add_vertex(1)).collect();
//! for w in v.windows(2) {
//!     b.add_net(1, [w[0], w[1]])?;
//! }
//! let hg = b.build()?;
//! let balance = vlsi_hypergraph::BalanceConstraint::bisection(
//!     hg.total_weight(),
//!     Tolerance::Relative(0.02),
//! );
//! let fixed = FixedVertices::all_free(hg.num_vertices());
//!
//! let ml = MultilevelPartitioner::new(MultilevelConfig::default());
//! let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(1);
//! let result = ml.run(&hg, &fixed, &balance, &mut rng)?;
//! assert_eq!(result.cut, 1); // a chain bisects with a single cut net
//! # let _ = balance;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod cancel;
mod config;
pub mod engine;
mod error;
pub mod fm;
mod gain;
mod initial;
pub mod kl;
pub mod kway;
pub mod multilevel;
pub mod multistart;
pub mod parallel;
pub mod policy;
pub mod quality;
mod result;
pub mod terminal_cluster;
pub mod warmstart;

pub use annealing::AnnealingConfig;
pub use cancel::CancelToken;
pub use config::{FmConfig, MultilevelConfig, PassCutoff, SelectionPolicy};
pub use engine::{
    DirectKway, EngineConfig, EngineInfo, FmStack, KwayConfig, KwayRefiner, Partitioner,
    RecursiveBisection, Refiner, RunCtx, UnknownEngine, ENGINES,
};
pub use error::PartitionError;
pub use fm::{BipartFm, FmResult, PassStats, PassTrace, RunStats};
pub use gain::{GainBuckets, KwayGains, KwayGainsSnapshot, MoveLog};
pub use initial::random_initial;
pub use kl::KlConfig;
pub use multilevel::{MultilevelPartitioner, MultilevelResult};
pub use multistart::{Multistart, MultistartOutcome, StartRecord};
// The deprecated free-function spellings stay re-exported for source
// compatibility; re-exporting them would otherwise trip `-D deprecated`.
#[allow(deprecated)]
pub use multistart::{
    multistart, multistart_engine, multistart_engine_cancellable, multistart_engine_with_sink,
    multistart_parallel, multistart_parallel_engine, multistart_parallel_engine_cancellable,
    multistart_parallel_engine_instrumented, multistart_with_sink,
};
pub use result::PartitionResult;
pub use warmstart::{refine_from_partition_ctx, WarmStartOutcome};

/// The structured-tracing vocabulary ([`trace::Event`], [`trace::Sink`] and
/// its implementations) re-exported so downstream crates need not depend on
/// `vlsi-trace` directly.
pub use vlsi_trace as trace;
