//! The terminal-clustering equivalence transform from the paper's
//! conclusions: "a bipartitioning instance with an arbitrary number/percent
//! of fixed terminals can be represented by an equivalent instance with
//! only two terminals, by clustering all terminals fixed in a given
//! partition into one single terminal."

use std::collections::HashMap;

use vlsi_hypergraph::{
    BuildError, FixedVertices, Fixity, Hypergraph, HypergraphBuilder, PartId, VertexId,
};

/// The result of [`cluster_terminals`]: the transformed instance and the
/// mapping from original vertices to clustered vertices.
#[derive(Debug, Clone)]
pub struct ClusteredInstance {
    /// The transformed hypergraph: all free vertices plus at most one
    /// terminal per partition.
    pub hypergraph: Hypergraph,
    /// Fixities of the transformed instance.
    pub fixed: FixedVertices,
    /// `map[v]` is the vertex in the transformed instance representing
    /// original vertex `v`.
    pub map: Vec<VertexId>,
    /// For each partition that had terminals, the clustered terminal vertex.
    pub terminal_of_part: HashMap<PartId, VertexId>,
}

impl ClusteredInstance {
    /// Projects a partition assignment of the clustered instance back onto
    /// the original vertex set.
    pub fn project(&self, clustered_parts: &[PartId]) -> Vec<PartId> {
        self.map
            .iter()
            .map(|m| clustered_parts[m.index()])
            .collect()
    }
}

/// Clusters all vertices fixed in the same partition into a single terminal
/// vertex of the summed weight. Vertices with `FixedAny` fixities are left
/// untouched (they are not bound to a unique partition).
///
/// The transform preserves the cut of every legal solution: any net's set of
/// touched partitions is unchanged because each terminal cluster sits
/// exactly where its members sat.
///
/// # Errors
/// Returns [`BuildError`] if the rebuilt hypergraph is malformed (cannot
/// happen for well-formed inputs; surfaced for API honesty).
///
/// # Example
/// ```
/// use vlsi_hypergraph::{FixedVertices, HypergraphBuilder, PartId, VertexId};
/// use vlsi_partition::terminal_cluster::cluster_terminals;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..5).map(|_| b.add_vertex(1)).collect();
/// b.add_net(1, [v[0], v[1], v[4]])?;
/// b.add_net(1, [v[2], v[3]])?;
/// let hg = b.build()?;
/// let mut fx = FixedVertices::all_free(5);
/// fx.fix(v[0], PartId(0));
/// fx.fix(v[1], PartId(0));
/// fx.fix(v[2], PartId(1));
///
/// let clustered = cluster_terminals(&hg, &fx)?;
/// // 2 free vertices + 2 terminal clusters
/// assert_eq!(clustered.hypergraph.num_vertices(), 4);
/// assert_eq!(clustered.fixed.num_fixed(), 2);
/// # Ok(())
/// # }
/// ```
pub fn cluster_terminals(
    hg: &Hypergraph,
    fixed: &FixedVertices,
) -> Result<ClusteredInstance, BuildError> {
    let mut builder = HypergraphBuilder::with_resources(hg.num_resources());
    let mut map = vec![VertexId(0); hg.num_vertices()];
    let mut fixities: Vec<Fixity> = Vec::new();

    // Free (and FixedAny) vertices first, preserving relative order.
    for v in hg.vertices() {
        let fixity = fixed.fixity(v);
        if !matches!(fixity, Fixity::Fixed(_)) {
            let nv = builder.add_vertex_multi(hg.vertex_weights(v))?;
            map[v.index()] = nv;
            fixities.push(fixity);
        }
    }

    // One terminal per partition, carrying the summed weights.
    let mut terminal_of_part: HashMap<PartId, VertexId> = HashMap::new();
    let mut part_weights: HashMap<PartId, Vec<u64>> = HashMap::new();
    for v in hg.vertices() {
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            let acc = part_weights
                .entry(p)
                .or_insert_with(|| vec![0; hg.num_resources()]);
            for (r, &w) in hg.vertex_weights(v).iter().enumerate() {
                acc[r] += w;
            }
        }
    }
    let mut parts: Vec<PartId> = part_weights.keys().copied().collect();
    parts.sort();
    for p in parts {
        let nv = builder.add_vertex_multi(&part_weights[&p])?;
        terminal_of_part.insert(p, nv);
        fixities.push(Fixity::Fixed(p));
    }
    for v in hg.vertices() {
        if let Fixity::Fixed(p) = fixed.fixity(v) {
            map[v.index()] = terminal_of_part[&p];
        }
    }

    // Rebuild nets through the map, deduplicating merged pins.
    for n in hg.nets() {
        builder.add_net_dedup(
            hg.net_weight(n),
            hg.net_pins(n).iter().map(|&v| map[v.index()]),
        )?;
    }

    Ok(ClusteredInstance {
        hypergraph: builder.build()?,
        fixed: FixedVertices::from_fixities(fixities),
        map,
        terminal_of_part,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{CutState, PartSet};

    fn instance() -> (Hypergraph, FixedVertices) {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|i| b.add_vertex(i as u64 + 1)).collect();
        b.add_net(1, [v[0], v[2], v[4]]).unwrap();
        b.add_net(2, [v[1], v[3]]).unwrap();
        b.add_net(1, [v[4], v[5]]).unwrap();
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(6);
        fx.fix(VertexId(0), PartId(0));
        fx.fix(VertexId(2), PartId(0));
        fx.fix(VertexId(1), PartId(1));
        (hg, fx)
    }

    #[test]
    fn clusters_per_part() {
        let (hg, fx) = instance();
        let c = cluster_terminals(&hg, &fx).unwrap();
        // 3 free + 2 terminals
        assert_eq!(c.hypergraph.num_vertices(), 5);
        let t0 = c.terminal_of_part[&PartId(0)];
        let t1 = c.terminal_of_part[&PartId(1)];
        assert_eq!(c.hypergraph.vertex_weight(t0), 1 + 3);
        assert_eq!(c.hypergraph.vertex_weight(t1), 2);
        assert_eq!(c.fixed.fixity(t0), Fixity::Fixed(PartId(0)));
    }

    #[test]
    fn total_weight_preserved() {
        let (hg, fx) = instance();
        let c = cluster_terminals(&hg, &fx).unwrap();
        assert_eq!(c.hypergraph.total_weight(), hg.total_weight());
        assert_eq!(c.hypergraph.num_nets(), hg.num_nets());
    }

    #[test]
    fn cut_equivalence_for_projected_solutions() {
        let (hg, fx) = instance();
        let c = cluster_terminals(&hg, &fx).unwrap();
        // Assign the clustered free vertices arbitrarily, terminals fixed.
        let mut cparts = vec![PartId(0); c.hypergraph.num_vertices()];
        for v in c.hypergraph.vertices() {
            cparts[v.index()] = match c.fixed.fixity(v) {
                Fixity::Fixed(p) => p,
                _ => PartId(v.0 % 2),
            };
        }
        let clustered_cut = CutState::new(&c.hypergraph, 2, &cparts).cut();
        let orig_parts = c.project(&cparts);
        let orig_cut = CutState::new(&hg, 2, &orig_parts).cut();
        assert_eq!(clustered_cut, orig_cut);
    }

    #[test]
    fn fixed_any_left_untouched() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        b.add_net(1, [v0, v1]).unwrap();
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(2);
        fx.fix_any(v0, PartSet::all(2));
        let c = cluster_terminals(&hg, &fx).unwrap();
        assert_eq!(c.hypergraph.num_vertices(), 2);
        assert!(matches!(c.fixed.fixity(c.map[0]), Fixity::FixedAny(_)));
    }

    #[test]
    fn no_terminals_is_identity_shape() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(2);
        let v1 = b.add_vertex(3);
        b.add_net(1, [v0, v1]).unwrap();
        let hg = b.build().unwrap();
        let fx = FixedVertices::all_free(2);
        let c = cluster_terminals(&hg, &fx).unwrap();
        assert_eq!(c.hypergraph.num_vertices(), 2);
        assert!(c.terminal_of_part.is_empty());
    }
}
