//! Random legal initial solutions respecting fixed vertices and balance.

use vlsi_rng::seq::SliceRandom;
use vlsi_rng::Rng;

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Fixity, Hypergraph, PartId, VertexId};

use crate::PartitionError;

/// Number of reshuffles attempted before declaring the instance infeasible.
const MAX_ATTEMPTS: usize = 25;

/// Generates a random partition assignment that honours every fixity and
/// satisfies the balance constraint.
///
/// Fixed vertices are placed first (a `FixedAny` vertex goes to the allowed
/// partition with the most remaining capacity); free vertices are then
/// assigned in random order, each to a random partition among those still
/// below the even-split target (falling back to any partition with room).
/// The shuffle is retried a bounded number of times if the result violates
/// partition minima.
///
/// # Errors
/// Returns [`PartitionError::InfeasibleInstance`] if a vertex cannot be
/// placed or no balanced assignment is found after the retries, and
/// [`PartitionError::Balance`] if the constraint cannot hold the total
/// weight at all.
///
/// # Example
/// ```
/// use vlsi_rng::SeedableRng;
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, Tolerance};
/// use vlsi_partition::random_initial;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// for _ in 0..10 {
///     b.add_vertex(1);
/// }
/// let hg = b.build()?;
/// let bc = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
/// let fx = FixedVertices::all_free(10);
/// let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(7);
/// let parts = random_initial(&hg, &fx, &bc, 2, &mut rng)?;
/// let ones = parts.iter().filter(|p| p.0 == 1).count();
/// assert_eq!(ones, 5);
/// # Ok(())
/// # }
/// ```
pub fn random_initial<R: Rng + ?Sized>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    num_parts: usize,
    rng: &mut R,
) -> Result<Vec<PartId>, PartitionError> {
    balance.check_feasible(hg.total_weights())?;
    let nr = hg.num_resources();

    let mut free: Vec<VertexId> = Vec::new();
    let mut assignment = vec![PartId(0); hg.num_vertices()];
    let mut base_loads = vec![0u64; num_parts * nr];

    // Phase 1: place fixed vertices (identical on every attempt except for
    // FixedAny choices, which are deterministic greedy here).
    for v in hg.vertices() {
        let fixity = if v.index() < fixed.len() {
            fixed.fixity(v)
        } else {
            Fixity::Free
        };
        match fixity {
            Fixity::Free => free.push(v),
            Fixity::Fixed(p) => {
                if p.index() >= num_parts {
                    return Err(PartitionError::InfeasibleInstance {
                        vertex: Some(v),
                        detail: format!("fixed in {p} but only {num_parts} partitions exist"),
                    });
                }
                add_load(&mut base_loads, nr, p, hg.vertex_weights(v));
                assignment[v.index()] = p;
            }
            Fixity::FixedAny(set) => {
                // Most remaining primary capacity among the allowed parts.
                let p = set
                    .iter()
                    .filter(|p| p.index() < num_parts)
                    .max_by_key(|&p| balance.max(p, 0).saturating_sub(base_loads[p.index() * nr]))
                    .ok_or_else(|| PartitionError::InfeasibleInstance {
                        vertex: Some(v),
                        detail: "no allowed partition within range".to_string(),
                    })?;
                add_load(&mut base_loads, nr, p, hg.vertex_weights(v));
                assignment[v.index()] = p;
            }
        }
    }
    for p in 0..num_parts {
        let part = PartId::from_index(p);
        for r in 0..nr {
            if base_loads[p * nr + r] > balance.max(part, r) {
                return Err(PartitionError::InfeasibleInstance {
                    vertex: None,
                    detail: format!(
                        "fixed vertices alone exceed capacity of {part} for resource {r}"
                    ),
                });
            }
        }
    }

    // Phase 2: place free vertices, heaviest bias via target fill.
    let targets: Vec<u64> = (0..num_parts * nr)
        .map(|i| hg.total_weights()[i % nr] / num_parts as u64)
        .collect();
    for _attempt in 0..MAX_ATTEMPTS {
        let mut loads = base_loads.clone();
        free.shuffle(rng);
        let mut ok = true;
        for &v in &free {
            let ws = hg.vertex_weights(v);
            let below_target: Vec<usize> = (0..num_parts)
                .filter(|&p| {
                    (0..nr).all(|r| {
                        loads[p * nr + r] + ws[r] <= balance.max(PartId::from_index(p), r)
                            && loads[p * nr + r] < targets[p * nr + r].max(1)
                    })
                })
                .collect();
            let candidates: Vec<usize> = if below_target.is_empty() {
                (0..num_parts)
                    .filter(|&p| {
                        (0..nr).all(|r| {
                            loads[p * nr + r] + ws[r] <= balance.max(PartId::from_index(p), r)
                        })
                    })
                    .collect()
            } else {
                below_target
            };
            let Some(&p) = candidates.as_slice().choose(rng) else {
                ok = false;
                break;
            };
            let part = PartId::from_index(p);
            add_load(&mut loads, nr, part, ws);
            assignment[v.index()] = part;
        }
        if ok && balance.is_satisfied(&loads) {
            return Ok(assignment);
        }
    }
    Err(PartitionError::InfeasibleInstance {
        vertex: None,
        detail: format!("no balanced random assignment found in {MAX_ATTEMPTS} attempts"),
    })
}

#[inline]
fn add_load(loads: &mut [u64], nr: usize, part: PartId, weights: &[u64]) {
    let base = part.index() * nr;
    for (r, &w) in weights.iter().enumerate() {
        loads[base + r] += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{HypergraphBuilder, PartSet, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn unit_graph(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(1);
        }
        b.build().unwrap()
    }

    #[test]
    fn exact_bisection_of_units() {
        let hg = unit_graph(20);
        let bc = BalanceConstraint::bisection(20, Tolerance::Relative(0.0));
        let fx = FixedVertices::all_free(20);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts = random_initial(&hg, &fx, &bc, 2, &mut rng).unwrap();
        assert_eq!(parts.iter().filter(|p| p.0 == 0).count(), 10);
    }

    #[test]
    fn fixed_vertices_respected() {
        let hg = unit_graph(10);
        let bc = BalanceConstraint::bisection(10, Tolerance::Relative(0.2));
        let mut fx = FixedVertices::all_free(10);
        for i in 0..4 {
            fx.fix(VertexId(i), PartId(1));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let parts = random_initial(&hg, &fx, &bc, 2, &mut rng).unwrap();
        for i in 0..4 {
            assert_eq!(parts[i as usize], PartId(1));
        }
    }

    #[test]
    fn fixed_any_goes_to_allowed_part() {
        let hg = unit_graph(8);
        let bc = BalanceConstraint::even(4, &[8], Tolerance::Relative(1.0));
        let mut fx = FixedVertices::all_free(8);
        let allowed: PartSet = [PartId(2), PartId(3)].into_iter().collect();
        fx.fix_any(VertexId(0), allowed);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let parts = random_initial(&hg, &fx, &bc, 4, &mut rng).unwrap();
        assert!(allowed.contains(parts[0]));
    }

    #[test]
    fn fixed_out_of_range_rejected() {
        let hg = unit_graph(4);
        let bc = BalanceConstraint::bisection(4, Tolerance::Relative(0.5));
        let mut fx = FixedVertices::all_free(4);
        fx.fix(VertexId(0), PartId(5));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let err = random_initial(&hg, &fx, &bc, 2, &mut rng).unwrap_err();
        assert!(matches!(err, PartitionError::InfeasibleInstance { .. }));
    }

    #[test]
    fn overfull_fixed_side_rejected() {
        let mut b = HypergraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(10);
        }
        let hg = b.build().unwrap();
        let bc = BalanceConstraint::bisection(40, Tolerance::Relative(0.0));
        let mut fx = FixedVertices::all_free(4);
        for i in 0..3 {
            fx.fix(VertexId(i), PartId(0)); // 30 > max 20
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(random_initial(&hg, &fx, &bc, 2, &mut rng).is_err());
    }

    #[test]
    fn infeasible_total_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(100);
        let hg = b.build().unwrap();
        let bc =
            vlsi_hypergraph::BalanceConstraint::explicit(2, 1, vec![0, 0], vec![10, 10]).unwrap();
        let fx = FixedVertices::all_free(1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let err = random_initial(&hg, &fx, &bc, 2, &mut rng).unwrap_err();
        assert!(matches!(err, PartitionError::Balance(_)));
    }

    #[test]
    fn heavy_cell_instances_still_balance() {
        // One cell of weight 10 among 30 unit cells: 2% tolerance around 20.
        let mut b = HypergraphBuilder::new();
        b.add_vertex(10);
        for _ in 0..30 {
            b.add_vertex(1);
        }
        let hg = b.build().unwrap();
        let bc = BalanceConstraint::bisection(40, Tolerance::Relative(0.05));
        let fx = FixedVertices::all_free(31);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let parts = random_initial(&hg, &fx, &bc, 2, &mut rng).unwrap();
        let w0: u64 = hg
            .vertices()
            .filter(|v| parts[v.index()] == PartId(0))
            .map(|v| hg.vertex_weight(v))
            .sum();
        assert!(w0 >= bc.min(PartId(0), 0) && w0 <= bc.max(PartId(0), 0));
    }

    #[test]
    fn different_seeds_differ() {
        let hg = unit_graph(30);
        let bc = BalanceConstraint::bisection(30, Tolerance::Relative(0.1));
        let fx = FixedVertices::all_free(30);
        let a = random_initial(&hg, &fx, &bc, 2, &mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let b2 = random_initial(&hg, &fx, &bc, 2, &mut ChaCha8Rng::seed_from_u64(2)).unwrap();
        assert_ne!(a, b2);
    }
}
