//! Kernighan–Lin pair-swap bipartitioning — the classic baseline that
//! Fiduccia–Mattheyses (and everything in this repository) improved upon.
//!
//! Each KL pass repeatedly swaps the best pair `(a ∈ P0, b ∈ P1)` of
//! unlocked vertices, locks them, and finally keeps the best prefix of the
//! swap sequence. Swapping preserves vertex counts, so balance drifts only
//! by weight differences; as in the FM engine, only balanced prefixes are
//! accepted.
//!
//! For hypergraphs the exact swap gain is
//! `gain(a) + gain(b) − Σ_{n ∋ a,b} ([c₀(n)=1] + [c₁(n)=1])·w(n)`:
//! a net containing both endpoints keeps its pin distribution under a
//! swap, so the single-move gains it contributed must be cancelled.
//!
//! KL is provided as a *baseline* (quality and runtime comparisons in the
//! benchmark suite); its pair selection scans the top candidates of each
//! side, making a pass O(passes · n · (pins/n + K²·deg)).

use vlsi_hypergraph::{
    BalanceConstraint, FixedVertices, Fixity, Hypergraph, Objective, PartId, Partitioning, VertexId,
};
use vlsi_trace::{CancelStage, Event, NullSink, Sink};

use crate::cancel::CancelToken;
use crate::{PartitionError, PartitionResult};

/// Number of top-gain candidates considered per side for each swap.
const CANDIDATES_PER_SIDE: usize = 8;

/// Configuration of the KL baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KlConfig {
    /// Maximum number of passes.
    pub max_passes: usize,
    /// Maximum swaps per pass (`None` = until locks run out).
    pub max_swaps_per_pass: Option<usize>,
}

impl Default for KlConfig {
    fn default() -> Self {
        KlConfig {
            max_passes: 10,
            max_swaps_per_pass: None,
        }
    }
}

/// Runs KL from the given initial bipartition.
///
/// # Errors
/// * [`PartitionError::UnsupportedPartCount`] unless `balance` is 2-way.
/// * [`PartitionError::Input`] if `initial` is inconsistent with `hg` or a
///   fixity.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{BalanceConstraint, FixedVertices, HypergraphBuilder, PartId, Tolerance};
/// use vlsi_partition::kl::{kernighan_lin, KlConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two triangles joined by one net; start from the worst interleaving.
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
/// for g in [[0, 1, 2], [3, 4, 5]] {
///     b.add_net(1, [v[g[0]], v[g[1]]])?;
///     b.add_net(1, [v[g[1]], v[g[2]]])?;
///     b.add_net(1, [v[g[2]], v[g[0]]])?;
/// }
/// b.add_net(1, [v[0], v[3]])?;
/// let hg = b.build()?;
/// let fixed = FixedVertices::all_free(6);
/// let balance = BalanceConstraint::bisection(6, Tolerance::Relative(0.0));
/// let initial: Vec<PartId> = (0..6).map(|i| PartId(i % 2)).collect();
/// let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default())?;
/// assert_eq!(r.cut, 1);
/// # Ok(())
/// # }
/// ```
pub fn kernighan_lin(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: KlConfig,
) -> Result<PartitionResult, PartitionError> {
    kernighan_lin_with_sink(hg, fixed, balance, initial, config, &NullSink)
}

/// Like [`kernighan_lin`], bracketing each pass with
/// [`Event::PassStart`]/[`Event::PassEnd`] (`moves` counts swaps; KL has
/// no gain buckets, so `bucket_ops` is 0).
///
/// # Errors
/// Same as [`kernighan_lin`].
pub fn kernighan_lin_with_sink<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: KlConfig,
    sink: &S,
) -> Result<PartitionResult, PartitionError> {
    kernighan_lin_cancellable(
        hg,
        fixed,
        balance,
        initial,
        config,
        sink,
        &CancelToken::never(),
    )
}

/// Like [`kernighan_lin_with_sink`], additionally polling `cancel` at pass
/// boundaries and before every swap. A cancelled run keeps the best prefix
/// of the interrupted pass, records one [`Event::Cancelled`] (stage
/// `kl_pass`), and returns the best solution found so far.
///
/// # Errors
/// Same as [`kernighan_lin`].
pub fn kernighan_lin_cancellable<S: Sink>(
    hg: &Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
    initial: Vec<PartId>,
    config: KlConfig,
    sink: &S,
    cancel: &CancelToken,
) -> Result<PartitionResult, PartitionError> {
    if balance.num_parts() != 2 {
        return Err(PartitionError::UnsupportedPartCount {
            requested: balance.num_parts(),
            supported: 2,
        });
    }
    let mut p = Partitioning::from_parts_fixed(hg, 2, initial, fixed)?;
    let movable: Vec<bool> = hg
        .vertices()
        .map(|v| {
            let f = if v.index() < fixed.len() {
                fixed.fixity(v)
            } else {
                Fixity::Free
            };
            f.allows(PartId(0)) && f.allows(PartId(1))
        })
        .collect();

    if !cancel.is_cancelled() {
        for pass in 0..config.max_passes {
            let before = p.cut_value(Objective::Cut);
            run_pass(
                hg,
                balance,
                &movable,
                &mut p,
                config.max_swaps_per_pass,
                pass as u32,
                sink,
                cancel,
            );
            if p.cut_value(Objective::Cut) >= before || cancel.is_cancelled() {
                break;
            }
        }
    }
    let cut = p.cut_value(Objective::Cut);
    if S::ENABLED && cancel.is_cancelled() {
        sink.record(&Event::Cancelled {
            stage: CancelStage::KlPass,
            value: cut,
        });
    }
    Ok(PartitionResult::new(p.into_parts(), cut))
}

/// Single-move FM gain of `v` under the current state.
fn move_gain(hg: &Hypergraph, p: &Partitioning, v: VertexId) -> i64 {
    let from = p.part_of(v);
    let to = from.other_side();
    let cs = p.cut_state();
    let mut g = 0i64;
    for &n in hg.vertex_nets(v) {
        let w = hg.net_weight(n) as i64;
        if cs.pins_in(n, from) == 1 {
            g += w;
        }
        if cs.pins_in(n, to) == 0 {
            g -= w;
        }
    }
    g
}

/// Exact correction for nets shared by the swap pair.
fn swap_interaction(hg: &Hypergraph, p: &Partitioning, a: VertexId, b: VertexId) -> i64 {
    let cs = p.cut_state();
    let mut corr = 0i64;
    // Iterate over the lower-degree endpoint's nets.
    let (small, other) = if hg.vertex_degree(a) <= hg.vertex_degree(b) {
        (a, b)
    } else {
        (b, a)
    };
    for &n in hg.vertex_nets(small) {
        if !hg.net_pins(n).contains(&other) {
            continue;
        }
        let w = hg.net_weight(n) as i64;
        if cs.pins_in(n, PartId(0)) == 1 {
            corr += w;
        }
        if cs.pins_in(n, PartId(1)) == 1 {
            corr += w;
        }
    }
    corr
}

#[allow(clippy::too_many_arguments)]
fn run_pass<S: Sink>(
    hg: &Hypergraph,
    balance: &BalanceConstraint,
    movable: &[bool],
    p: &mut Partitioning,
    max_swaps: Option<usize>,
    pass: u32,
    sink: &S,
    cancel: &CancelToken,
) {
    let n = hg.num_vertices();
    let mut locked = vec![false; n];
    let mut log: Vec<(VertexId, VertexId)> = Vec::new();
    let start_cut = p.cut_value(Objective::Cut);
    let mut best_cut = start_cut;
    let mut best_len = 0usize;
    let limit = max_swaps.unwrap_or(n);
    if S::ENABLED {
        sink.record(&Event::PassStart {
            pass,
            cut: start_cut,
            movable: movable.iter().filter(|&&m| m).count() as u64,
            move_limit: limit as u64,
        });
    }

    while log.len() < limit {
        // Each swap already costs an O(n) candidate scan, so an armed
        // token is simply re-polled once per swap.
        if !cancel.is_never() && cancel.is_cancelled() {
            break;
        }
        // Top candidates by single-move gain on each side.
        let mut side0: Vec<(i64, VertexId)> = Vec::new();
        let mut side1: Vec<(i64, VertexId)> = Vec::new();
        for v in hg.vertices() {
            if locked[v.index()] || !movable[v.index()] {
                continue;
            }
            let g = move_gain(hg, p, v);
            if p.part_of(v) == PartId(0) {
                side0.push((g, v));
            } else {
                side1.push((g, v));
            }
        }
        if side0.is_empty() || side1.is_empty() {
            break;
        }
        side0.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
        side1.sort_unstable_by_key(|x| std::cmp::Reverse(x.0));
        side0.truncate(CANDIDATES_PER_SIDE);
        side1.truncate(CANDIDATES_PER_SIDE);

        let mut best_pair: Option<(i64, VertexId, VertexId)> = None;
        for &(ga, a) in &side0 {
            for &(gb, b) in &side1 {
                let delta = ga + gb - swap_interaction(hg, p, a, b);
                if best_pair.map(|(d, _, _)| delta > d).unwrap_or(true) {
                    best_pair = Some((delta, a, b));
                }
            }
        }
        let Some((delta, a, b)) = best_pair else {
            break;
        };
        let before = p.cut_value(Objective::Cut) as i64;
        p.move_vertex(hg, a, PartId(1));
        p.move_vertex(hg, b, PartId(0));
        debug_assert_eq!(
            before - delta,
            p.cut_value(Objective::Cut) as i64,
            "swap gain mispredicted for {a}/{b}"
        );
        locked[a.index()] = true;
        locked[b.index()] = true;
        log.push((a, b));
        let cut = p.cut_value(Objective::Cut);
        if balance.is_satisfied(p.loads()) && cut < best_cut {
            best_cut = cut;
            best_len = log.len();
        }
    }

    // Roll back to the best prefix.
    for &(a, b) in log[best_len..].iter().rev() {
        p.move_vertex(hg, a, PartId(0));
        p.move_vertex(hg, b, PartId(1));
    }
    debug_assert_eq!(p.cut_value(Objective::Cut), best_cut);
    if S::ENABLED {
        sink.record(&Event::PassEnd {
            pass,
            moves: log.len() as u64,
            best_prefix: best_len as u64,
            cut_before: start_cut,
            cut_after: best_cut,
            bucket_ops: 0, // KL has no gain buckets
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_hypergraph::{validate_partitioning, HypergraphBuilder, Tolerance};
    use vlsi_rng::ChaCha8Rng;
    use vlsi_rng::SeedableRng;

    fn two_cliques(s: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2 * s).map(|_| b.add_vertex(1)).collect();
        for base in [0, s] {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_net(1, [v[base + i], v[base + j]]).unwrap();
                }
            }
        }
        b.add_net(1, [v[0], v[s]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn untangles_interleaved_cliques() {
        let hg = two_cliques(6);
        let fixed = FixedVertices::all_free(12);
        let balance = BalanceConstraint::bisection(12, Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..12).map(|i| PartId(i % 2)).collect();
        let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default()).unwrap();
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn solutions_are_valid_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..30).map(|_| b.add_vertex(1)).collect();
        use vlsi_rng::Rng;
        for _ in 0..60 {
            let i = rng.gen_range(0..30usize);
            let j = (i + rng.gen_range(1..30usize)) % 30;
            b.add_net_dedup(1, [v[i], v[j]]).unwrap();
        }
        let hg = b.build().unwrap();
        let fixed = FixedVertices::all_free(30);
        let balance = BalanceConstraint::bisection(30, Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..30).map(|i| PartId(i % 2)).collect();
        let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default()).unwrap();
        let p = Partitioning::from_parts(&hg, 2, r.parts).unwrap();
        let report = validate_partitioning(&hg, &p, &balance, &fixed);
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn fixed_vertices_never_swap() {
        let hg = two_cliques(4);
        let mut fixed = FixedVertices::all_free(8);
        fixed.fix(VertexId(0), PartId(1));
        fixed.fix(VertexId(4), PartId(0));
        let balance = BalanceConstraint::bisection(8, Tolerance::Relative(0.0));
        // Legal initial respecting the pins.
        let mut initial: Vec<PartId> = (0..8).map(|i| PartId(u32::from(i >= 4))).collect();
        initial[0] = PartId(1);
        initial[4] = PartId(0);
        initial[1] = PartId(0);
        initial[5] = PartId(1);
        let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default()).unwrap();
        assert_eq!(r.parts[0], PartId(1));
        assert_eq!(r.parts[4], PartId(0));
    }

    #[test]
    fn never_worse_than_initial() {
        let hg = two_cliques(5);
        let fixed = FixedVertices::all_free(10);
        let balance = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
        for seed in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let initial = crate::random_initial(&hg, &fixed, &balance, 2, &mut rng).unwrap();
            let before = vlsi_hypergraph::CutState::new(&hg, 2, &initial).cut();
            let r = kernighan_lin(&hg, &fixed, &balance, initial, KlConfig::default()).unwrap();
            assert!(r.cut <= before);
        }
    }

    #[test]
    fn rejects_multiway() {
        let hg = two_cliques(3);
        let fixed = FixedVertices::all_free(6);
        let balance = BalanceConstraint::even(3, &[6], Tolerance::Relative(0.5));
        let err = kernighan_lin(
            &hg,
            &fixed,
            &balance,
            vec![PartId(0); 6],
            KlConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::UnsupportedPartCount { .. }));
    }

    #[test]
    fn swap_limit_respected() {
        let hg = two_cliques(6);
        let fixed = FixedVertices::all_free(12);
        let balance = BalanceConstraint::bisection(12, Tolerance::Relative(0.0));
        let initial: Vec<PartId> = (0..12).map(|i| PartId(i % 2)).collect();
        let cfg = KlConfig {
            max_swaps_per_pass: Some(1),
            max_passes: 1,
        };
        let r = kernighan_lin(&hg, &fixed, &balance, initial.clone(), cfg).unwrap();
        // At most one swap happened: at most 2 assignment entries differ.
        let diff = r.parts.iter().zip(&initial).filter(|(a, b)| a != b).count();
        assert!(diff <= 2);
    }
}
