//! Baseline-engine comparison benchmarks: multilevel vs flat FM vs
//! Kernighan–Lin vs simulated annealing, on free and fixed instances.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::annealing::{simulated_annealing, AnnealingConfig};
use vlsi_partition::kl::{kernighan_lin, KlConfig};
use vlsi_partition::{random_initial, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner};

fn bench_baselines(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.08, 1999); // ~1000 cells: KL is O(n^2)-ish
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);

    let mut group = c.benchmark_group("baselines/engine");
    group.sample_size(10);
    for pct in [0.0f64, 30.0] {
        let fixed = schedule.at_percent(pct);
        group.bench_with_input(
            BenchmarkId::new("multilevel", format!("{pct}pct")),
            &fixed,
            |b, fixed| {
                let ml = MultilevelPartitioner::new(MultilevelConfig::default());
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| black_box(ml.run(hg, fixed, &balance, &mut rng).expect("runs")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_fm", format!("{pct}pct")),
            &fixed,
            |b, fixed| {
                let fm = BipartFm::new(FmConfig::default());
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| black_box(fm.run_random(hg, fixed, &balance, &mut rng).expect("runs")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kernighan_lin", format!("{pct}pct")),
            &fixed,
            |b, fixed| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| {
                    let initial =
                        random_initial(hg, fixed, &balance, 2, &mut rng).expect("feasible");
                    black_box(
                        kernighan_lin(hg, fixed, &balance, initial, KlConfig::default())
                            .expect("runs"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("annealing", format!("{pct}pct")),
            &fixed,
            |b, fixed| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| {
                    let initial =
                        random_initial(hg, fixed, &balance, 2, &mut rng).expect("feasible");
                    black_box(
                        simulated_annealing(
                            hg,
                            fixed,
                            &balance,
                            initial,
                            AnnealingConfig::default(),
                            &mut rng,
                        )
                        .expect("runs"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
