//! Bench for Table IV: deriving fixed-terminal benchmark instances from a
//! placed circuit (generation + block/cutline extraction).
//!
//! Regenerate the table with `cargo run -p vlsi-experiments --bin table4`.

use std::hint::black_box;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_netgen::blocks::{extract_block, standard_instances};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_netgen::Cutline;

fn bench_block_extract(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);

    c.bench_function("table4/extract_half_block", |b| {
        let (left, _) = circuit.die.split_vertical();
        b.iter(|| {
            black_box(extract_block(
                &circuit,
                None,
                left,
                Cutline::Vertical,
                "bench",
            ))
        })
    });

    let mut group = c.benchmark_group("table4/standard_instances");
    group.sample_size(10);
    group.bench_function("all_eight", |b| {
        b.iter(|| black_box(standard_instances(&circuit, None)))
    });
    group.finish();

    c.bench_function("table4/generate_circuit", |b| {
        b.iter(|| black_box(ibm01_like_scaled(0.05, 7)))
    });
}

criterion_group!(benches, bench_block_extract);
criterion_main!(benches);
