//! The generalized k-way gain container against the old BinaryHeap
//! selection.
//!
//! Both entry points run the identical k-way FM pass semantics on the same
//! synthetic netgen instance (10% of vertices fixed, quadrisection):
//!
//! * `kway_gains` — `kway::refine_pass`, built on the bucket-array
//!   [`vlsi_partition::KwayGains`] container (O(1) updates, decaying max).
//! * `binary_heap` — `kway::refine_pass_reference`, the pre-refactor lazy
//!   BinaryHeap selection kept as a behavioural reference.
//!
//! Each iteration clones the same feasible initial assignment, so the two
//! variants differ only in the selection structure.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Objective, PartId, Tolerance, VertexId};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::{kway, random_initial};

fn bench_kway_gains(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 2024);
    let hg = &circuit.hypergraph;
    let k = 4usize;
    let balance = BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1));

    // Round-robin fix 10% of the vertices across the four parts.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 10 {
        fixed.fix(VertexId(i as u32), PartId((i % k) as u32));
    }

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let initial: Vec<PartId> =
        random_initial(hg, &fixed, &balance, k, &mut rng).expect("feasible instance");

    let mut group = c.benchmark_group("kway/gain_container");
    group.sample_size(10);

    group.bench_function("kway_gains", |b| {
        b.iter(|| {
            black_box(
                kway::refine_pass(hg, &fixed, &balance, initial.clone(), Objective::Cut)
                    .expect("pass succeeds"),
            )
        })
    });

    group.bench_function("binary_heap", |b| {
        b.iter(|| {
            black_box(
                kway::refine_pass_reference(hg, &fixed, &balance, initial.clone(), Objective::Cut)
                    .expect("pass succeeds"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kway_gains);
criterion_main!(benches);
