//! The CI perf-regression suite. Unlike the paper-table benches, this
//! target exists to be *gated*: it measures the hot phases the parallel
//! execution layer touches (heavy-edge matching + contraction, FM gain
//! initialization inside a full run, an end-to-end multilevel partition,
//! the synchronous-round parallel k-way refinement under both the
//! cut and the connectivity objectives, and the V-cycle quality phase on
//! top of the multistart driver) at several thread counts, writes
//! `results/bench/BENCH_partition.json`, and — when `PERF_GATE=1` — fails
//! the process if any benchmark's median regressed more than 15% against
//! the checked-in baseline (`PERF_BASELINE`, defaulting to
//! `results/bench/BENCH_partition.baseline.json`). The cut-objective
//! refinement slice (`partition/refine_parallel/t1`) additionally carries
//! a tighter min-vs-min bound — see `CUT_REFINE_MAX_REGRESSION`.
//!
//! The baseline is regenerated on purpose, never by accident:
//! `TESTKIT_BENCH_DIR=... cargo bench -p bench --bench perf_suite` and
//! copy the JSON over the baseline file.

use std::hint::black_box;

use vlsi_rng::{ChaCha8Rng, SeedableRng};
use vlsi_testkit::bench::Criterion;

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, PartId, Tolerance, VertexId};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::multilevel::{coarsen_once, CoarsenParams};
use vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, Partitioner, RunCtx,
    SelectionPolicy,
};

/// Thread counts every phase is measured at.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The default gate threshold: a benchmark fails if its median exceeds
/// the baseline median by more than this factor. `PERF_MAX_REGRESSION`
/// (a percentage, e.g. `40`) overrides it for noisy builders.
const MAX_REGRESSION: f64 = 1.15;

/// Wider gate for the single-shot `scale/` *wall-clock* records: a ~30 s
/// partition measured once cannot amortize builder noise the way a
/// multi-sample median can (observed run-to-run spread on the CI box is
/// ~±20% for identical code). `PERF_SCALE_MAX_REGRESSION` overrides.
/// The `scale/peak_rss/*` record stays on the tight default — memory is
/// repeatable to within a few percent and is the gate that matters here.
const SCALE_TIME_MAX_REGRESSION: f64 = 1.5;

fn max_regression() -> f64 {
    std::env::var("PERF_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| 1.0 + pct / 100.0)
        .unwrap_or(MAX_REGRESSION)
}

fn scale_time_max_regression() -> f64 {
    std::env::var("PERF_SCALE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| 1.0 + pct / 100.0)
        .unwrap_or(SCALE_TIME_MAX_REGRESSION)
}

/// Tighter gate for the cut-objective refinement engine slice
/// (`partition/refine_parallel/t1`): the pluggable-objective gain layer
/// must stay near-free when the objective is `Cut`, so a ≤5% drift bound
/// keeps that promise standing. The tripwire compares **min-vs-min** —
/// background load only ever adds time, so the minimum sample is the
/// statistic least polluted by the builder — over a ≥30-sample floor
/// (see `min_samples` in `bench_refine_parallel`), where the min repeats
/// to within ±2% on the CI box. Only the t1 slice carries it: the t2–t8
/// medians are dominated by scoped-thread spawn jitter (observed ±30%
/// run-to-run on the CI box) and stay on the general gate.
/// `PERF_CUT_MAX_REGRESSION` overrides it for noisy builders.
const CUT_REFINE_MAX_REGRESSION: f64 = 1.05;

fn cut_refine_max_regression() -> f64 {
    std::env::var("PERF_CUT_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| 1.0 + pct / 100.0)
        .unwrap_or(CUT_REFINE_MAX_REGRESSION)
}

fn fixture() -> (
    vlsi_hypergraph::Hypergraph,
    FixedVertices,
    BalanceConstraint,
) {
    let circuit = ibm01_like_scaled(0.60, 7);
    let hg = circuit.hypergraph;
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 20 {
        fixed.fix(VertexId((i * 7) as u32), PartId((i % 2) as u32));
    }
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    (hg, fixed, balance)
}

fn bench_coarsen(c: &mut Criterion, hg: &vlsi_hypergraph::Hypergraph, fixed: &FixedVertices) {
    let mut group = c.benchmark_group("partition/coarsen_once");
    group.sample_size(15);
    for threads in THREADS {
        let params = CoarsenParams {
            max_cluster_weight: hg.total_weight() / 20,
            max_cluster_weights: Vec::new(),
            max_net_size_for_matching: 64,
            max_fixed_part_weight: Vec::new(),
            allow_free_fixed_merge: false,
            threads,
        };
        group.bench_function(format!("t{threads}").as_str(), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| black_box(coarsen_once(hg, fixed, &params, 0.99, None, &mut rng)))
        });
    }
    group.finish();
}

fn bench_flat_fm(
    c: &mut Criterion,
    hg: &vlsi_hypergraph::Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
) {
    // A full flat-FM run; the parallel gain initialization dominates the
    // start of every pass on an instance this size.
    let mut group = c.benchmark_group("partition/flat_fm");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Clip,
            ..FmConfig::default()
        })
        .with_threads(threads);
        group.bench_function(format!("t{threads}").as_str(), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(11);
                black_box(
                    fm.partition_ctx(hg, fixed, balance, RunCtx::new(&mut rng))
                        .expect("fm runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_multilevel(
    c: &mut Criterion,
    hg: &vlsi_hypergraph::Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
) {
    let mut group = c.benchmark_group("partition/multilevel");
    group.sample_size(10);
    for threads in THREADS {
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            coarsest_size: 60,
            coarse_starts: 2,
            threads,
            ..MultilevelConfig::default()
        });
        group.bench_function(format!("t{threads}").as_str(), |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(23);
                black_box(
                    ml.partition_ctx(hg, fixed, balance, RunCtx::new(&mut rng))
                        .expect("ml runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_refine_parallel(c: &mut Criterion, hg: &vlsi_hypergraph::Hypergraph) {
    // The synchronous-round k-way refinement at every thread budget. On a
    // single-core builder only the t1 median is a meaningful latency
    // signal (t2–t8 pay scoped-thread spawns with no parallel speedup),
    // but all four are gated: the t1 slice guards the engine itself and
    // the others guard the per-round freeze/merge overhead.
    use vlsi_hypergraph::Objective;
    use vlsi_partition::{kway, random_initial};

    let k = 4;
    let balance = BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 20 {
        fixed.fix(VertexId((i * 7) as u32), PartId((i % k) as u32));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let initial = random_initial(hg, &fixed, &balance, k, &mut rng).expect("feasible fixture");

    let mut group = c.benchmark_group("partition/refine_parallel");
    group.sample_size(30);
    // The t1 slice is gated min-vs-min at the tight cut-path bound; the
    // min only converges with enough samples (observed ±1.6% across runs
    // at 30 samples vs ±11% at 5), so the floor holds even under the CI
    // speed knob (`TESTKIT_BENCH_SAMPLES=5`).
    group.min_samples(30);
    for threads in THREADS {
        group.bench_function(format!("t{threads}").as_str(), |b| {
            b.iter(|| {
                black_box(
                    kway::refine_pass_parallel(
                        hg,
                        &fixed,
                        &balance,
                        initial.clone(),
                        Objective::Cut,
                        threads,
                    )
                    .expect("round engine runs"),
                )
            })
        });
    }
    group.finish();

    // The same pass under the connectivity objective: km1 deltas touch
    // every pin's part-count bookkeeping instead of the boundary test, so
    // this group prices the heterogeneous-objective tier on the exact
    // workload the cut slices above use.
    let mut group = c.benchmark_group("partition/km1_refine");
    group.sample_size(30);
    group.min_samples(30);
    for threads in [1usize, 4] {
        group.bench_function(format!("t{threads}").as_str(), |b| {
            b.iter(|| {
                black_box(
                    kway::refine_pass_parallel(
                        hg,
                        &fixed,
                        &balance,
                        initial.clone(),
                        Objective::KMinus1,
                        threads,
                    )
                    .expect("km1 round engine runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_vcycle(
    c: &mut Criterion,
    hg: &vlsi_hypergraph::Hypergraph,
    fixed: &FixedVertices,
    balance: &BalanceConstraint,
) {
    // The iterated-multilevel quality phase end to end: a 2-start parallel
    // multistart followed by two V-cycles over the incumbent best. This
    // prices what `--vcycles 2` adds on top of the plain driver — the
    // restricted re-coarsening plus re-refinement per cycle — at the
    // sequential and 4-thread budgets. Gated on the general median bound.
    use vlsi_partition::trace::NullSink;
    use vlsi_partition::{CancelToken, EngineConfig, Multistart};

    let engine = EngineConfig::by_name("ml").expect("ml is registered");
    let driver = Multistart::new(2).vcycles(2);
    let mut group = c.benchmark_group("partition/vcycle");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("t{threads}").as_str(), |b| {
            let never = CancelToken::never();
            b.iter(|| {
                black_box(
                    driver
                        .run_parallel(
                            hg, fixed, balance, threads, 23, &engine, &NullSink, &NullSink, &never,
                        )
                        .expect("quality run succeeds"),
                )
            })
        });
    }
    group.finish();
}

/// Whether the million-cell `scale/` group runs (skip with `PERF_SCALE=0`
/// on builders that cannot afford a ~30 s single-shot partition; the gate
/// then ignores `scale/` baseline entries instead of failing on them).
fn scale_enabled() -> bool {
    std::env::var("PERF_SCALE").as_deref() != Ok("0")
}

/// The million-cell tier: wall-clock for streaming generation + CSR
/// build (a real calibrated benchmark — it is sub-second) and a
/// single-shot full multilevel partition, plus the process peak RSS.
/// Single-shot because one partition run takes ~30 s; the computation is
/// deterministic, so run-to-run variance stays well inside the 15% gate.
/// Runs after every other group so the reported peak RSS (a process-wide
/// high-water mark) is dominated by the million-cell instance, not by the
/// small fixtures.
fn bench_scale(c: &mut Criterion) {
    use vlsi_netgen::instances::million_cells_scaled;

    let mut group = c.benchmark_group("scale/build");
    group.sample_size(3);
    group.bench_function("1M", |b| b.iter(|| black_box(million_cells_scaled(1.0, 7))));
    group.finish();

    let circuit = million_cells_scaled(1.0, 7);
    let hg = &circuit.hypergraph;
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 50 {
        fixed.fix(VertexId((i * 41) as u32), PartId((i % 2) as u32));
    }
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));
    let ml = MultilevelPartitioner::new(MultilevelConfig {
        coarse_starts: 1,
        threads: 8,
        ..MultilevelConfig::default()
    });
    let t = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let result = ml
        .partition_ctx(hg, &fixed, &balance, RunCtx::new(&mut rng))
        .expect("ml runs at 1M cells");
    let wall_ns = t.elapsed().as_nanos() as f64;
    black_box(&result);
    c.report_value("scale/partition/1M/t8", wall_ns);
    if let Some(peak) = bench::mem::peak_rss_bytes() {
        c.report_value("scale/peak_rss/1M/bytes", peak as f64);
    }
}

/// One record pulled from a testkit bench JSON file.
struct BenchRecord {
    id: String,
    median_ns: f64,
    min_ns: f64,
}

/// Scans one numeric field (`"name": 123.4`) out of a record chunk.
fn scan_field(chunk: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\": ");
    let pos = chunk.find(&needle)?;
    let rest = &chunk[pos + needle.len()..];
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse::<f64>().ok()
}

/// Pulls `(id, median_ns, min_ns)` records out of a testkit bench JSON
/// file with a plain string scan (the format is fixed: `"id": "...", ...
/// "min_ns": 123.4, ... "median_ns": 123.4`), so the gate needs no JSON
/// dependency. Single-sample "reported" records carry the value in every
/// statistic, so `min_ns` falls back to `median_ns` when absent.
fn parse_records(json: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for chunk in json.split("\"id\": \"").skip(1) {
        let Some(id_end) = chunk.find('"') else {
            continue;
        };
        let id = chunk[..id_end].to_string();
        let Some(median_ns) = scan_field(chunk, "median_ns") else {
            continue;
        };
        let min_ns = scan_field(chunk, "min_ns").unwrap_or(median_ns);
        out.push(BenchRecord {
            id,
            median_ns,
            min_ns,
        });
    }
    out
}

/// Reports the 4-thread speedup of the parallelized phases and, when
/// `PERF_GATE=1`, compares every benchmark's median against the baseline.
/// Returns `false` if the gate failed.
fn gate(results_path: &std::path::Path) -> bool {
    let Ok(current_json) = std::fs::read_to_string(results_path) else {
        eprintln!("perf_suite: no results at {}", results_path.display());
        return true;
    };
    let current = parse_records(&current_json);

    for phase in ["partition/coarsen_once", "partition/multilevel"] {
        let t1 = current.iter().find(|r| r.id == format!("{phase}/t1"));
        let t4 = current.iter().find(|r| r.id == format!("{phase}/t4"));
        if let (Some(r1), Some(r4)) = (t1, t4) {
            println!(
                "perf_suite: {phase} speedup at 4 threads: {:.2}x",
                r1.median_ns / r4.median_ns
            );
        }
    }

    if std::env::var("PERF_GATE").as_deref() != Ok("1") {
        return true;
    }
    // Cargo runs bench binaries with the crate dir as cwd, so relative
    // paths (including the PERF_BASELINE default) resolve against the
    // workspace root instead.
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let baseline_path = std::env::var("PERF_BASELINE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::PathBuf::from("results/bench/BENCH_partition.baseline.json")
        });
    let baseline_path = if baseline_path.is_absolute() {
        baseline_path
    } else {
        workspace_root.join(baseline_path)
    };
    let baseline_json = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "perf_suite: PERF_GATE=1 but cannot read baseline {}: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    let baseline = parse_records(&baseline_json);

    let threshold = max_regression();
    let mut ok = true;
    for base in &baseline {
        let id = &base.id;
        if !scale_enabled() && id.starts_with("scale/") {
            println!("perf_suite: gate skip: {id} (PERF_SCALE=0)");
            continue;
        }
        let Some(cur) = current.iter().find(|r| &r.id == id) else {
            eprintln!("perf_suite: GATE FAIL: benchmark {id} missing from current run");
            ok = false;
            continue;
        };
        // Cut-objective refinement: the pluggable-objective layer must
        // stay near-free for `Objective::Cut`, so the engine-cost slice
        // is held to the tighter cut-path bound, compared min-vs-min so
        // builder load (which only ever adds time) cannot trip it.
        let cut_slice = id == "partition/refine_parallel/t1";
        let threshold = if id.starts_with("scale/") && !id.starts_with("scale/peak_rss") {
            threshold.max(scale_time_max_regression())
        } else if cut_slice {
            cut_refine_max_regression()
        } else {
            threshold
        };
        let (stat, cur_v, base_v) = if cut_slice {
            ("min", cur.min_ns, base.min_ns)
        } else {
            ("median", cur.median_ns, base.median_ns)
        };
        let ratio = cur_v / base_v;
        if ratio > threshold {
            eprintln!(
                "perf_suite: GATE FAIL: {id} regressed {:.0}% ({stat} {cur_v:.0} ns vs baseline {base_v:.0} ns)",
                (ratio - 1.0) * 100.0,
            );
            ok = false;
        } else {
            println!(
                "perf_suite: gate ok: {id} at {:.0}% of baseline ({stat})",
                ratio * 100.0
            );
        }
    }
    ok
}

fn main() {
    // The file name doubles as the CI artifact name, so it is pinned here
    // instead of deriving from the crate name like the other targets.
    let mut c = Criterion::new("BENCH_partition", env!("CARGO_MANIFEST_DIR"));
    let (hg, fixed, balance) = fixture();
    bench_coarsen(&mut c, &hg, &fixed);
    bench_flat_fm(&mut c, &hg, &fixed, &balance);
    bench_multilevel(&mut c, &hg, &fixed, &balance);
    bench_refine_parallel(&mut c, &hg);
    bench_vcycle(&mut c, &hg, &fixed, &balance);
    if scale_enabled() {
        bench_scale(&mut c);
    } else {
        println!("perf_suite: scale/ group skipped (PERF_SCALE=0)");
    }
    c.finalize();

    let out_dir = std::env::var_os("TESTKIT_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("results")
                .join("bench")
        });
    if !gate(&out_dir.join("BENCH_partition.json")) {
        std::process::exit(1);
    }
}
