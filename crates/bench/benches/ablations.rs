//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * LIFO vs CLIP selection (the paper: "very similar results");
//! * V-cycling on vs off (the paper: "a net loss in terms of overall
//!   cost-runtime profile");
//! * free–fixed merging in coarsening (this reproduction found it harmful);
//! * the terminal-clustering equivalence transform vs the raw fixed set.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::terminal_cluster::cluster_terminals;
use vlsi_partition::{
    BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner, SelectionPolicy,
};

fn bench_ablations(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(20.0);

    // LIFO vs CLIP flat FM.
    let mut group = c.benchmark_group("ablation/selection_policy");
    group.sample_size(10);
    for policy in [SelectionPolicy::Lifo, SelectionPolicy::Clip] {
        let fm = BipartFm::new(FmConfig {
            policy,
            ..FmConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &fm,
            |b, fm| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| black_box(fm.run_random(hg, &fixed, &balance, &mut rng).expect("runs")))
            },
        );
    }
    group.finish();

    // V-cycling 0 vs 1 vs 2.
    let mut group = c.benchmark_group("ablation/vcycles");
    group.sample_size(10);
    for vcycles in [0usize, 1, 2] {
        let ml = MultilevelPartitioner::new(MultilevelConfig {
            vcycles,
            ..MultilevelConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(vcycles), &ml, |b, ml| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            b.iter(|| black_box(ml.run(hg, &fixed, &balance, &mut rng).expect("runs")))
        });
    }
    group.finish();

    // Terminal-clustering equivalence transform: run on the clustered
    // instance vs the raw one (the paper's conclusions predict comparable
    // difficulty; clustering shrinks the vertex set).
    let clustered = cluster_terminals(hg, &fixed).expect("transform succeeds");
    let clustered_balance = paper_balance(&clustered.hypergraph);
    let mut group = c.benchmark_group("ablation/terminal_clustering");
    group.sample_size(10);
    let ml = MultilevelPartitioner::new(MultilevelConfig::default());
    group.bench_function("raw", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| black_box(ml.run(hg, &fixed, &balance, &mut rng).expect("runs")))
    });
    group.bench_function("clustered", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                ml.run(
                    &clustered.hypergraph,
                    &clustered.fixed,
                    &clustered_balance,
                    &mut rng,
                )
                .expect("runs"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
