//! Bench for Table II: flat LIFO-FM runs at increasing fixed fractions.
//! Runtime should fall as terminals remove movable vertices and shorten
//! the useful part of each pass.
//!
//! Regenerate the table with `cargo run -p vlsi-experiments --bin table2`.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::{BipartFm, FmConfig, MultilevelConfig, SelectionPolicy};

fn bench_fm_pass_stats(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut group = c.benchmark_group("table2/lifo_fm_run");
    group.sample_size(10);
    for pct in [0.0, 10.0, 30.0, 50.0] {
        let fixed = schedule.at_percent(pct);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pct}pct")),
            &fixed,
            |b, fixed| {
                let mut rng = ChaCha8Rng::seed_from_u64(5);
                b.iter(|| {
                    black_box(
                        fm.run_random(hg, fixed, &balance, &mut rng)
                            .expect("fm succeeds"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fm_pass_stats);
criterion_main!(benches);
