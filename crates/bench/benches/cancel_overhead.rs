//! Overhead of cooperative cancellation on the uncancelled fast path.
//!
//! Mirrors the `trace_overhead` methodology (same ibm01-like instance,
//! 10% fixed in the good regime, LIFO FM, sample size 10) for the
//! [`CancelToken`] threaded through every engine loop. Variants:
//!
//! * `plain` — the provided `run_random` entry point, which instantiates
//!   the cancellable engine with [`CancelToken::never`]: one predictable
//!   branch per checkpoint, no atomics, no clock. This is what every
//!   pre-existing caller pays.
//! * `armed` — a live manual token that never fires: a relaxed atomic
//!   load every [`CHECK_INTERVAL`] moves and at pass boundaries.
//! * `deadline_far` — a token with a far-future deadline: the atomic load
//!   plus an `Instant::now` comparison at each checkpoint, the worst
//!   uncancelled case (what a served job with a generous deadline pays).
//!
//! The `cancel/multistart` group repeats the comparison one driver up, on
//! the 4-start sequential multistart protocol — the acceptance budget for
//! this subsystem is ≤2% overhead of `armed`/`deadline_far` over `plain`
//! on uncancelled FM multistart.
//!
//! [`CancelToken`]: vlsi_partition::CancelToken
//! [`CHECK_INTERVAL`]: vlsi_partition::cancel::CHECK_INTERVAL

use std::hint::black_box;
use std::time::Duration;

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::trace::NullSink;
use vlsi_partition::{
    BipartFm, CancelToken, EngineConfig, FmConfig, MultilevelConfig, Multistart, RunCtx,
    SelectionPolicy,
};

fn bench_cancel_overhead_fm(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(10.0);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut group = c.benchmark_group("cancel/fm");
    group.sample_size(10);

    group.bench_function("plain", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random(hg, &fixed, &balance, &mut rng)
                    .expect("fm succeeds"),
            )
        })
    });

    group.bench_function("armed", |b| {
        let cancel = CancelToken::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random_cancellable(hg, &fixed, &balance, &mut rng, &NullSink, &cancel)
                    .expect("fm succeeds"),
            )
        })
    });

    group.bench_function("deadline_far", |b| {
        let cancel = CancelToken::with_deadline(Duration::from_secs(3600));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random_cancellable(hg, &fixed, &balance, &mut rng, &NullSink, &cancel)
                    .expect("fm succeeds"),
            )
        })
    });

    group.finish();
}

fn bench_cancel_overhead_multistart(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(10.0);
    let engine = EngineConfig::Fm(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });
    let starts = 4usize;

    let mut group = c.benchmark_group("cancel/multistart");
    group.sample_size(10);

    let driver = Multistart::new(starts);

    group.bench_function("plain", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                driver
                    .run(hg, &fixed, &balance, &engine, RunCtx::new(&mut rng))
                    .expect("multistart succeeds"),
            )
        })
    });

    group.bench_function("armed", |b| {
        let cancel = CancelToken::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                driver
                    .run(
                        hg,
                        &fixed,
                        &balance,
                        &engine,
                        RunCtx::new(&mut rng)
                            .with_sink(&NullSink)
                            .with_cancel(&cancel),
                    )
                    .expect("multistart succeeds"),
            )
        })
    });

    group.bench_function("deadline_far", |b| {
        let cancel = CancelToken::with_deadline(Duration::from_secs(3600));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                driver
                    .run(
                        hg,
                        &fixed,
                        &balance,
                        &engine,
                        RunCtx::new(&mut rng)
                            .with_sink(&NullSink)
                            .with_cancel(&cancel),
                    )
                    .expect("multistart succeeds"),
            )
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_cancel_overhead_fm,
    bench_cancel_overhead_multistart
);
criterion_main!(benches);
