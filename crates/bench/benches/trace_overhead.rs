//! Overhead of the vlsi-trace observability layer on the FM inner loop.
//!
//! Four variants of the same LIFO-FM workload as `fm_pass_stats` (10% of
//! vertices fixed, good regime):
//!
//! * `null` — `run_random_with_sink` with [`NullSink`]: must cost the same
//!   as the plain `run_random` baseline, since `Sink::ENABLED = false`
//!   compiles every emission site out of the monomorphised engine.
//! * `plain` — `run_random`, the pre-trace entry point, for reference.
//! * `counters` — [`CounterSink`]: a few relaxed atomic adds per event.
//! * `jsonl_devnull` — [`JsonlSink`] into `std::io::sink()`: full event
//!   serialisation without disk I/O, an upper bound for `--trace` cost.
//!
//! The `trace/kway` group repeats the experiment for the k-way refinement
//! loop (its `KwayPassStart`/`KwayMove`/`KwayPassEnd` events).

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_hypergraph::{BalanceConstraint, FixedVertices, Objective, PartId, Tolerance, VertexId};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::trace::{CounterSink, JsonlSink, NullSink};
use vlsi_partition::{kway, random_initial, BipartFm, FmConfig, MultilevelConfig, SelectionPolicy};

fn bench_trace_overhead(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(10.0);
    let fm = BipartFm::new(FmConfig {
        policy: SelectionPolicy::Lifo,
        ..FmConfig::default()
    });

    let mut group = c.benchmark_group("trace/overhead");
    group.sample_size(10);

    group.bench_function("plain", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random(hg, &fixed, &balance, &mut rng)
                    .expect("fm succeeds"),
            )
        })
    });

    group.bench_function("null", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random_with_sink(hg, &fixed, &balance, &mut rng, &NullSink)
                    .expect("fm succeeds"),
            )
        })
    });

    group.bench_function("counters", |b| {
        let sink = CounterSink::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random_with_sink(hg, &fixed, &balance, &mut rng, &sink)
                    .expect("fm succeeds"),
            )
        })
    });

    group.bench_function("jsonl_devnull", |b| {
        let sink = JsonlSink::from_writer(Box::new(std::io::sink()));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            black_box(
                fm.run_random_with_sink(hg, &fixed, &balance, &mut rng, &sink)
                    .expect("fm succeeds"),
            )
        })
    });

    group.finish();
}

fn bench_trace_overhead_kway(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let k = 4usize;
    let balance = BalanceConstraint::even(k, &[hg.total_weight()], Tolerance::Relative(0.1));
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 10 {
        fixed.fix(VertexId(i as u32), PartId((i % k) as u32));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let initial: Vec<PartId> =
        random_initial(hg, &fixed, &balance, k, &mut rng).expect("feasible instance");
    let passes = 2usize;

    let mut group = c.benchmark_group("trace/kway");
    group.sample_size(10);

    group.bench_function("plain", |b| {
        b.iter(|| {
            black_box(
                kway::refine(
                    hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    Objective::Cut,
                    passes,
                )
                .expect("refine succeeds"),
            )
        })
    });

    group.bench_function("null", |b| {
        b.iter(|| {
            black_box(
                kway::refine_with_sink(
                    hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    Objective::Cut,
                    passes,
                    &NullSink,
                )
                .expect("refine succeeds"),
            )
        })
    });

    group.bench_function("counters", |b| {
        let sink = CounterSink::new();
        b.iter(|| {
            black_box(
                kway::refine_with_sink(
                    hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    Objective::Cut,
                    passes,
                    &sink,
                )
                .expect("refine succeeds"),
            )
        })
    });

    group.bench_function("jsonl_devnull", |b| {
        let sink = JsonlSink::from_writer(Box::new(std::io::sink()));
        b.iter(|| {
            black_box(
                kway::refine_with_sink(
                    hg,
                    &fixed,
                    &balance,
                    initial.clone(),
                    Objective::Cut,
                    passes,
                    &sink,
                )
                .expect("refine succeeds"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trace_overhead, bench_trace_overhead_kway);
criterion_main!(benches);
