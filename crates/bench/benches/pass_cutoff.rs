//! Bench for Table III: single LIFO-FM starts under pass cutoffs. The
//! paper's finding: "in all cases, limiting the number of moves in a pass
//! improves runtime".
//!
//! Regenerate the table with `cargo run -p vlsi-experiments --bin table3`.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::{BipartFm, FmConfig, MultilevelConfig, PassCutoff, SelectionPolicy};

fn bench_pass_cutoff(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 7)
        .expect("reference solution");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);
    let fixed = schedule.at_percent(30.0);

    let mut group = c.benchmark_group("table3/lifo_fm_cutoff");
    group.sample_size(10);
    for (label, cutoff) in [
        ("unlimited", PassCutoff::Unlimited),
        ("50pct", PassCutoff::Fraction(0.50)),
        ("25pct", PassCutoff::Fraction(0.25)),
        ("10pct", PassCutoff::Fraction(0.10)),
        ("5pct", PassCutoff::Fraction(0.05)),
    ] {
        let fm = BipartFm::new(FmConfig {
            policy: SelectionPolicy::Lifo,
            cutoff,
            ..FmConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(label), &fm, |b, fm| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            b.iter(|| {
                black_box(
                    fm.run_random(hg, &fixed, &balance, &mut rng)
                        .expect("fm succeeds"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pass_cutoff);
criterion_main!(benches);
