//! Bench for Figures 1–2: multilevel partitioning at increasing fixed
//! fractions. The paper's right-hand plots show CPU time *decreasing* with
//! the fixed percentage; these benchmarks measure exactly that.
//!
//! Regenerate the figures with `cargo run -p vlsi-experiments --bin figures`.

use std::hint::black_box;
use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;
use vlsi_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::{MultilevelConfig, MultilevelPartitioner};

fn bench_figure_sweep(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.10, 1999);
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    let ml_config = MultilevelConfig::default();
    let good = find_good_solution(hg, &balance, &ml_config, 4, 7).expect("reference solution");
    let ml = MultilevelPartitioner::new(ml_config);

    let mut group = c.benchmark_group("figure/multilevel_start");
    group.sample_size(10);
    for regime in [Regime::Good, Regime::Random] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let schedule = FixSchedule::new(hg, regime, &good.parts, &mut rng);
        for pct in [0.0, 5.0, 20.0, 50.0] {
            let fixed = schedule.at_percent(pct);
            group.bench_with_input(
                BenchmarkId::new(regime.label(), format!("{pct}pct")),
                &fixed,
                |b, fixed| {
                    let mut rng = ChaCha8Rng::seed_from_u64(11);
                    b.iter(|| {
                        black_box(
                            ml.run(hg, fixed, &balance, &mut rng)
                                .expect("partitioning succeeds"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_figure_sweep);
criterion_main!(benches);
