//! Micro-benchmarks of the substrate data structures: gain buckets,
//! incremental cut maintenance, and one coarsening level.

use std::hint::black_box;
use vlsi_rng::prelude::*;
use vlsi_rng::ChaCha8Rng;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_hypergraph::{CutState, FixedVertices, PartId, VertexId};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::multilevel::{coarsen_once, CoarsenParams};
use vlsi_partition::GainBuckets;

fn bench_gain_buckets(c: &mut Criterion) {
    c.bench_function("micro/gain_buckets_churn", |b| {
        let n = 10_000usize;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| {
            let mut gb = GainBuckets::new(n, 64);
            for i in 0..n as u32 {
                gb.insert(VertexId(i), rng.gen_range(-64..=64));
            }
            for _ in 0..n {
                let Some((v, _)) = gb.select(|_| true) else {
                    break;
                };
                gb.remove(v);
                gb.decay_max();
            }
            black_box(gb.len())
        })
    });
}

fn bench_cut_state(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.25, 7);
    let hg = &circuit.hypergraph;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let parts: Vec<PartId> = hg.vertices().map(|_| PartId(rng.gen_range(0..2))).collect();

    c.bench_function("micro/cut_state_build", |b| {
        b.iter(|| black_box(CutState::new(hg, 2, &parts)))
    });

    c.bench_function("micro/cut_state_move", |b| {
        let mut cs = CutState::new(hg, 2, &parts);
        let mut cur = parts.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            let v = VertexId(rng.gen_range(0..hg.num_vertices() as u32));
            let from = cur[v.index()];
            let to = PartId(1 - from.0);
            cs.move_vertex(hg, v, from, to);
            cur[v.index()] = to;
            black_box(cs.cut())
        })
    });
}

fn bench_coarsen(c: &mut Criterion) {
    let circuit = ibm01_like_scaled(0.25, 7);
    let hg = &circuit.hypergraph;
    let fixed = FixedVertices::all_free(hg.num_vertices());
    let params = CoarsenParams {
        max_cluster_weight: hg.total_weight() / 20,
        max_cluster_weights: Vec::new(),
        max_net_size_for_matching: 64,
        max_fixed_part_weight: Vec::new(),
        allow_free_fixed_merge: false,
        threads: 1,
    };
    let mut group = c.benchmark_group("micro/coarsen_once");
    group.sample_size(20);
    group.bench_function("free_3k", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| black_box(coarsen_once(hg, &fixed, &params, 0.99, None, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_gain_buckets, bench_cut_state, bench_coarsen);
criterion_main!(benches);
