//! Bench for Table I: computing the Rent's-rule block-size thresholds.
//!
//! Regenerate the table itself with `cargo run -p vlsi-experiments --bin table1`.

use std::hint::black_box;
use vlsi_testkit::bench::{criterion_group, criterion_main, Criterion};

use vlsi_experiments::table1;
use vlsi_netgen::rent::RentModel;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/full_table", |b| {
        b.iter(|| black_box(table1::compute()))
    });
    c.bench_function("table1/single_threshold", |b| {
        let m = RentModel::new(3.5, 0.68);
        b.iter(|| black_box(m.block_size_threshold(black_box(0.10))))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
