//! Criterion benchmark crate — see `benches/` for the per-table/figure
//! benchmark targets. The library itself carries only the pieces the
//! bench targets and the scale smoke share: process-memory sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mem;
