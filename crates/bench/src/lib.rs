//! Criterion benchmark crate — see `benches/` for the per-table/figure
//! benchmark targets. This library is intentionally empty.
