//! Bounded million-cell smoke: generate a Rent-faithful instance with the
//! streaming netgen path, run a full multilevel bisection, check the
//! result is legal, and report wall-clock plus peak RSS. `scripts/ci.sh`
//! runs this as the memory-safety net for the compact-CSR layout.
//!
//! Environment knobs (all optional):
//!
//! * `SCALE_SMOKE_CELLS` — instance size (default `1000000`).
//! * `SCALE_SMOKE_THREADS` — partitioner thread budget (default `8`).
//! * `SCALE_SMOKE_SEED` — generator/partitioner seed (default `7`).
//! * `SCALE_SMOKE_MAX_RSS_MB` — fail if peak RSS exceeds this (default
//!   `0` = report only).

use vlsi_hypergraph::{BalanceConstraint, FixedVertices, PartId, Tolerance, VertexId};
use vlsi_partition::{MultilevelConfig, MultilevelPartitioner, Partitioner, RunCtx};
use vlsi_rng::{ChaCha8Rng, SeedableRng};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let cells = env_u64("SCALE_SMOKE_CELLS", 1_000_000) as usize;
    let threads = env_u64("SCALE_SMOKE_THREADS", 8) as usize;
    let seed = env_u64("SCALE_SMOKE_SEED", 7);
    let max_rss_mb = env_u64("SCALE_SMOKE_MAX_RSS_MB", 0);

    let t0 = std::time::Instant::now();
    let scale = cells as f64 / 1_000_000.0;
    let circuit = vlsi_netgen::instances::million_cells_scaled(scale, seed);
    let hg = &circuit.hypergraph;
    println!(
        "scale_smoke: generated {} in {:.2?}: {} vertices, {} nets, {} pins, {:.1} MiB CSR",
        circuit.name,
        t0.elapsed(),
        hg.num_vertices(),
        hg.num_nets(),
        hg.num_pins(),
        mb(hg.arena_bytes() as u64),
    );

    // The paper's regime: a sprinkling of fixed terminals on both sides.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    for i in 0..hg.num_vertices() / 50 {
        fixed.fix(VertexId((i * 41) as u32), PartId((i % 2) as u32));
    }
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.05));

    let ml = MultilevelPartitioner::new(MultilevelConfig {
        coarse_starts: 1,
        threads,
        ..MultilevelConfig::default()
    });
    let t1 = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let result = ml
        .partition_ctx(hg, &fixed, &balance, RunCtx::new(&mut rng))
        .expect("multilevel partition of the smoke instance");
    println!(
        "scale_smoke: partitioned at t{threads} in {:.2?}: cut = {}",
        t1.elapsed(),
        result.cut
    );

    // Legality: assignment shape, fixed vertices respected, balance held.
    assert_eq!(result.parts.len(), hg.num_vertices(), "assignment length");
    let mut loads = [0u64; 2];
    for (i, &p) in result.parts.iter().enumerate() {
        let v = VertexId(i as u32);
        assert!(p.index() < 2, "vertex {i} assigned to part {}", p.index());
        assert!(
            fixed.fixity(v).allows(p),
            "fixed vertex {i} landed in part {}",
            p.index()
        );
        loads[p.index()] += hg.vertex_weight(v);
    }
    assert!(
        balance.is_satisfied(&loads),
        "balance violated: loads {loads:?}"
    );
    println!("scale_smoke: legality ok (loads {loads:?})");

    match bench::mem::peak_rss_bytes() {
        Some(peak) => {
            println!("scale_smoke: peak RSS {:.1} MiB", mb(peak));
            if max_rss_mb > 0 && mb(peak) > max_rss_mb as f64 {
                eprintln!("scale_smoke: FAIL: peak RSS exceeds {max_rss_mb} MiB");
                std::process::exit(1);
            }
        }
        None => println!("scale_smoke: no procfs; skipping the RSS gate"),
    }
}
