//! Process-memory sampling for the perf suite and the scale smoke.
//!
//! Linux exposes the high-water mark of the resident set (`VmHWM`) and the
//! current resident set (`VmRSS`) in `/proc/self/status`; both are read
//! with one small file read and no allocation beyond the line buffer. On
//! platforms without procfs the samplers return `None` and callers skip
//! the memory gate instead of failing.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// when procfs is unavailable.
///
/// The kernel only ever raises this value, so sampling it *after* a run
/// captures the worst moment of the run — exactly what a memory gate
/// wants.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size of this process in bytes (`VmRSS`), or
/// `None` when procfs is unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

/// Reads a `kB` field out of `/proc/self/status`.
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line[field.len()..]
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_current_on_linux() {
        let (Some(peak), Some(current)) = (peak_rss_bytes(), current_rss_bytes()) else {
            return; // no procfs: the samplers opt out instead of lying
        };
        assert!(current > 0);
        assert!(peak >= current, "high-water {peak} below current {current}");
    }

    #[test]
    fn peak_rises_with_allocation() {
        let Some(before) = peak_rss_bytes() else {
            return;
        };
        // Touch every page so the buffer actually becomes resident.
        let mut big = vec![0u8; 64 << 20];
        for i in (0..big.len()).step_by(4096) {
            big[i] = 1;
        }
        let after = peak_rss_bytes().expect("procfs was readable a moment ago");
        std::hint::black_box(&big);
        assert!(
            after >= before + (32 << 20),
            "peak {after} did not rise past {before} after a 64 MiB allocation"
        );
    }
}
