//! Reading and writing partitioning instances.
//!
//! Three textual formats are supported:
//!
//! * **hMetis `.hgr`** ([`read_hgr`] / [`write_hgr`]) — the de-facto
//!   standard exchange format for hypergraph partitioning benchmarks, with
//!   optional net and vertex weights.
//! * **Fixed-vertex `.fix` files** ([`read_fix`] / [`write_fix`]) — one line
//!   per vertex: `-1` for free, a partition index for fixed, or a
//!   comma-separated list of indices for the paper's "or" semantics
//!   (a terminal fixed in more than one partition, Section IV).
//! * **ACM/SIGDA `.netD`/`.are`** ([`read_netd`] / [`write_netd`]) — the
//!   classic benchmark format referenced in the paper's introduction, where
//!   pads (`pNN` modules) are distinguished from cells (`aNN` modules).
//!
//! All readers take `R: Read` by value (pass `&mut reader` to keep using the
//! reader afterwards); writers take `W: Write` the same way.

mod error;
mod fix;
mod hgr;
mod marea;
mod netare;
mod scan;

pub use error::ParseError;
pub use fix::{read_fix, write_fix};
pub use hgr::{read_hgr, write_hgr};
pub use marea::{apply_multi_areas, read_multi_are, write_multi_are};
pub use netare::{read_netd, write_netd, NetD};
