//! The paper's proposed *multi-area* file type (Section IV): "each area
//! corresponds to a given resource type; this is a straightforward
//! extension of the are file format with multiple module areas repeated on
//! the same line."
//!
//! Format: one line per vertex, in vertex order, holding `k ≥ 1`
//! whitespace-separated non-negative integers (the same `k` on every
//! line). Lines starting with `%` or `#` are comments. The reader streams
//! tokens straight into the flat weight matrix.

use std::io::{Read, Write};

use crate::io::scan::{Emitter, Scanner};
use crate::io::ParseError;
use crate::{Hypergraph, HypergraphBuilder};

/// Reads a multi-area file covering `num_vertices` vertices. Returns the
/// number of resource types and the flat row-major weight matrix.
///
/// # Errors
/// Returns [`ParseError`] if lines disagree on the resource count, a value
/// is malformed, or the entry count does not match `num_vertices`.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_multi_are;
/// let (k, w) = read_multi_are("3 1 7\n2 2 0\n".as_bytes(), 2)?;
/// assert_eq!(k, 3);
/// assert_eq!(w, vec![3, 1, 7, 2, 2, 0]);
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_multi_are<R: Read>(
    reader: R,
    num_vertices: usize,
) -> Result<(usize, Vec<u64>), ParseError> {
    let mut sc = Scanner::new(reader, b"%#");
    let mut num_resources = 0usize;
    let mut weights: Vec<u64> = Vec::new();
    let mut rows = 0usize;
    while sc.next_content_line()? {
        let line_no = sc.line();
        let mut cols = 0usize;
        while sc.token()? {
            weights.push(sc.parse_u64("area value")?);
            cols += 1;
        }
        if rows == 0 {
            num_resources = cols;
        } else if cols != num_resources {
            return Err(ParseError::malformed(
                line_no,
                format!("line has {cols} areas, expected {num_resources}"),
            ));
        }
        if rows == num_vertices {
            return Err(ParseError::malformed(
                line_no,
                format!("more than {num_vertices} area lines"),
            ));
        }
        rows += 1;
    }
    if rows != num_vertices {
        return Err(ParseError::malformed(
            0,
            format!("expected {num_vertices} area lines, found {rows}"),
        ));
    }
    Ok((num_resources, weights))
}

/// Writes a hypergraph's vertex weights as a multi-area file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_multi_are<W: Write>(writer: W, hg: &Hypergraph) -> std::io::Result<()> {
    let mut e = Emitter::new(writer);
    for v in hg.vertices() {
        for (i, w) in hg.vertex_weights(v).iter().enumerate() {
            if i > 0 {
                e.byte(b' ')?;
            }
            e.int(*w)?;
        }
        e.byte(b'\n')?;
    }
    e.finish()
}

/// Rebuilds `hg` with the multi-resource weights from a multi-area file —
/// the connectivity is untouched, every vertex gains `num_resources`
/// weights.
///
/// # Errors
/// Returns [`ParseError`] if the weight matrix shape disagrees with `hg`.
pub fn apply_multi_areas(
    hg: &Hypergraph,
    num_resources: usize,
    weights: &[u64],
) -> Result<Hypergraph, ParseError> {
    if weights.len() != hg.num_vertices() * num_resources {
        return Err(ParseError::malformed(
            0,
            format!(
                "weight matrix has {} entries, expected {}",
                weights.len(),
                hg.num_vertices() * num_resources
            ),
        ));
    }
    let mut b = HypergraphBuilder::with_capacity_and_resources(
        hg.num_vertices(),
        hg.num_nets(),
        hg.num_pins(),
        num_resources,
    );
    for v in hg.vertices() {
        let s = v.index() * num_resources;
        b.add_vertex_multi(&weights[s..s + num_resources])?;
        if let Some(name) = hg.vertex_name(v) {
            b.set_vertex_name(v, name);
        }
    }
    for n in hg.nets() {
        b.add_net(hg.net_weight(n), hg.net_pins(n).iter().copied())?;
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let u = b.add_vertex(1);
        let v = b.add_vertex(1);
        b.add_net(1, [u, v]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_multi_resource_graph() {
        let mut b = HypergraphBuilder::with_resources(3);
        let u = b.add_vertex_multi(&[1, 2, 3]).unwrap();
        let v = b.add_vertex_multi(&[4, 0, 6]).unwrap();
        b.add_net(1, [u, v]).unwrap();
        let hg = b.build().unwrap();

        let mut out = Vec::new();
        write_multi_are(&mut out, &hg).unwrap();
        let (k, w) = read_multi_are(out.as_slice(), 2).unwrap();
        assert_eq!(k, 3);
        assert_eq!(w, vec![1, 2, 3, 4, 0, 6]);
    }

    #[test]
    fn apply_upgrades_resource_count() {
        let hg = sample();
        let upgraded = apply_multi_areas(&hg, 2, &[5, 1, 7, 2]).unwrap();
        assert_eq!(upgraded.num_resources(), 2);
        assert_eq!(upgraded.vertex_weights(VertexId(1)), &[7, 2]);
        assert_eq!(upgraded.num_nets(), hg.num_nets());
        assert_eq!(upgraded.total_weights(), &[12, 3]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let hg = sample();
        assert!(apply_multi_areas(&hg, 2, &[1, 2, 3]).is_err());
    }

    #[test]
    fn ragged_lines_rejected() {
        assert!(read_multi_are("1 2\n3\n".as_bytes(), 2).is_err());
    }

    #[test]
    fn count_mismatch_rejected() {
        assert!(read_multi_are("1 2\n".as_bytes(), 2).is_err());
        assert!(read_multi_are("1\n2\n3\n".as_bytes(), 2).is_err());
    }

    #[test]
    fn comments_skipped() {
        let (k, w) = read_multi_are("% multi-area\n# also a comment\n9\n".as_bytes(), 1).unwrap();
        assert_eq!((k, w), (1, vec![9]));
    }
}
