//! ACM/SIGDA `.netD`/`.are` benchmark format.
//!
//! The classic format referenced in the paper's introduction. A `.netD`
//! file consists of a five-line header —
//!
//! ```text
//! 0
//! <num_pins>
//! <num_nets>
//! <num_modules>
//! <pad_offset>
//! ```
//!
//! — followed by one line per pin: `<module> <s|l> [I|O|B]`, where `s`
//! starts a new net and `l` continues the current one. Modules named `aK`
//! are cells with vertex index `K`; modules named `pK` are pads with vertex
//! index `pad_offset + K - 1`. The companion `.are` file lists
//! `<module> <area>` pairs (and, in the paper's proposed *multi-area*
//! extension, several areas per line).

use std::io::{BufRead, BufReader, Read, Write};

use crate::io::ParseError;
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// A parsed `.netD` instance: the hypergraph plus the cell/pad distinction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetD {
    /// The netlist hypergraph. Cells occupy the low vertex indices, pads the
    /// high ones (starting at [`NetD::pad_offset`]).
    pub hypergraph: Hypergraph,
    /// Index of the first pad vertex.
    pub pad_offset: usize,
}

impl NetD {
    /// Returns `true` if `vertex` is a pad (I/O terminal).
    pub fn is_pad(&self, vertex: VertexId) -> bool {
        vertex.index() >= self.pad_offset
    }

    /// Number of pad vertices.
    pub fn num_pads(&self) -> usize {
        self.hypergraph.num_vertices() - self.pad_offset
    }
}

fn module_index(token: &str, pad_offset: usize, line: usize) -> Result<usize, ParseError> {
    let (kind, rest) = token.split_at(1);
    let idx: usize = rest
        .parse()
        .map_err(|_| ParseError::malformed(line, format!("bad module name `{token}`")))?;
    match kind {
        "a" => Ok(idx),
        "p" => {
            if idx == 0 {
                return Err(ParseError::malformed(line, "pads are numbered from p1"));
            }
            Ok(pad_offset + idx - 1)
        }
        _ => Err(ParseError::malformed(
            line,
            format!("module `{token}` must start with `a` or `p`"),
        )),
    }
}

/// Reads a `.netD` netlist and an optional `.are` area file.
///
/// Vertices without an `.are` entry (or when `are` is `None`) get area 1 for
/// cells and 0 for pads — pads are the zero-area terminals of the paper.
///
/// # Errors
/// Returns [`ParseError`] for malformed headers, unknown module names, pins
/// before the first `s` marker, or count mismatches.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_netd;
/// let netd = "0\n4\n2\n3\n2\n\
///             a0 s\na1 l\n\
///             a1 s\np1 l\n";
/// let are = "a0 5\na1 3\np1 0\n";
/// let inst = read_netd(netd.as_bytes(), Some(are.as_bytes()))?;
/// assert_eq!(inst.hypergraph.num_nets(), 2);
/// assert_eq!(inst.num_pads(), 1);
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_netd<R: Read, A: Read>(netd: R, are: Option<A>) -> Result<NetD, ParseError> {
    let buf = BufReader::new(netd);
    let mut lines = buf.lines().enumerate();

    let mut header = [0usize; 5];
    for slot in header.iter_mut() {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| ParseError::malformed(0, "truncated header"))?;
        let line = line?;
        *slot = line.trim().parse().map_err(|_| {
            ParseError::malformed(idx + 1, format!("bad header value `{}`", line.trim()))
        })?;
    }
    let [_, num_pins, num_nets, num_modules, pad_offset_raw] = header;
    // The classic files store the index of the last non-pad module here; we
    // accept either that or the count of non-pad modules (off-by-one safe
    // because pads are zero-area and named explicitly).
    let pad_offset = pad_offset_raw.min(num_modules);

    let mut builder = HypergraphBuilder::with_capacity(num_modules, num_nets, num_pins);
    let mut areas = vec![None::<u64>; num_modules];
    for i in 0..num_modules {
        builder.add_vertex(0); // weights patched below via rebuild
        let name = if i < pad_offset {
            format!("a{i}")
        } else {
            format!("p{}", i - pad_offset + 1)
        };
        builder.set_vertex_name(VertexId::from_index(i), name);
    }

    let mut nets: Vec<(u64, Vec<VertexId>)> = Vec::with_capacity(num_nets);
    let mut current: Vec<VertexId> = Vec::new();
    let mut pins_seen = 0usize;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let module = toks
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing module name"))?;
        let marker = toks
            .next()
            .ok_or_else(|| ParseError::malformed(line_no, "missing s/l marker"))?;
        let vid = module_index(module, pad_offset, line_no)?;
        if vid >= num_modules {
            return Err(ParseError::malformed(
                line_no,
                format!("module `{module}` out of range ({num_modules} modules)"),
            ));
        }
        pins_seen += 1;
        match marker {
            "s" => {
                if !current.is_empty() {
                    nets.push((1, std::mem::take(&mut current)));
                }
                current.push(VertexId::from_index(vid));
            }
            "l" => {
                if current.is_empty() {
                    return Err(ParseError::malformed(
                        line_no,
                        "continuation pin before any `s` marker",
                    ));
                }
                current.push(VertexId::from_index(vid));
            }
            other => {
                return Err(ParseError::malformed(
                    line_no,
                    format!("unknown pin marker `{other}` (expected `s` or `l`)"),
                ))
            }
        }
    }
    if !current.is_empty() {
        nets.push((1, current));
    }
    if nets.len() != num_nets {
        return Err(ParseError::malformed(
            0,
            format!("header declared {num_nets} nets, found {}", nets.len()),
        ));
    }
    if pins_seen != num_pins {
        return Err(ParseError::malformed(
            0,
            format!("header declared {num_pins} pins, found {pins_seen}"),
        ));
    }

    if let Some(are) = are {
        let buf = BufReader::new(are);
        for (idx, line) in buf.lines().enumerate() {
            let line_no = idx + 1;
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut toks = trimmed.split_whitespace();
            let module = toks
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "missing module name"))?;
            let area: u64 = toks
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "missing area"))?
                .parse()
                .map_err(|_| ParseError::malformed(line_no, "bad area value"))?;
            let vid = module_index(module, pad_offset, line_no)?;
            if vid >= num_modules {
                return Err(ParseError::malformed(
                    line_no,
                    format!("module `{module}` out of range"),
                ));
            }
            areas[vid] = Some(area);
        }
    }

    // Rebuild with the final areas (the builder's vertices were placeholders).
    let mut b = HypergraphBuilder::with_capacity(num_modules, num_nets, num_pins);
    for (i, area) in areas.iter().enumerate() {
        let default = if i < pad_offset { 1 } else { 0 };
        let v = b.add_vertex(area.unwrap_or(default));
        let name = if i < pad_offset {
            format!("a{i}")
        } else {
            format!("p{}", i - pad_offset + 1)
        };
        b.set_vertex_name(v, name);
    }
    for (w, pins) in nets {
        b.add_net_dedup(w, pins)?;
    }
    Ok(NetD {
        hypergraph: b.build()?,
        pad_offset,
    })
}

/// Writes a [`NetD`] instance as a `.netD` file and its areas as `.are`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_netd<W: Write, A: Write>(
    mut netd_out: W,
    mut are_out: A,
    inst: &NetD,
) -> std::io::Result<()> {
    let hg = &inst.hypergraph;
    writeln!(netd_out, "0")?;
    writeln!(netd_out, "{}", hg.num_pins())?;
    writeln!(netd_out, "{}", hg.num_nets())?;
    writeln!(netd_out, "{}", hg.num_vertices())?;
    writeln!(netd_out, "{}", inst.pad_offset)?;
    let name = |v: VertexId| {
        if v.index() < inst.pad_offset {
            format!("a{}", v.index())
        } else {
            format!("p{}", v.index() - inst.pad_offset + 1)
        }
    };
    for n in hg.nets() {
        for (i, &p) in hg.net_pins(n).iter().enumerate() {
            let marker = if i == 0 { "s" } else { "l" };
            writeln!(netd_out, "{} {marker}", name(p))?;
        }
    }
    for v in hg.vertices() {
        writeln!(are_out, "{} {}", name(v), hg.vertex_weight(v))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetId;

    const SAMPLE: &str = "0\n5\n2\n4\n3\na0 s\na1 l\np1 l\na2 s\na1 l\n";

    #[test]
    fn parse_sample() {
        let inst = read_netd(SAMPLE.as_bytes(), None::<&[u8]>).unwrap();
        let hg = &inst.hypergraph;
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.num_pins(), 5);
        assert_eq!(inst.pad_offset, 3);
        assert_eq!(inst.num_pads(), 1);
        assert!(inst.is_pad(VertexId(3)));
        assert!(!inst.is_pad(VertexId(2)));
        // default areas: cells 1, pads 0
        assert_eq!(hg.vertex_weight(VertexId(0)), 1);
        assert_eq!(hg.vertex_weight(VertexId(3)), 0);
        assert_eq!(hg.vertex_name(VertexId(3)), Some("p1"));
    }

    #[test]
    fn areas_applied() {
        let are = "a0 7\np1 2\n";
        let inst = read_netd(SAMPLE.as_bytes(), Some(are.as_bytes())).unwrap();
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(0)), 7);
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(3)), 2);
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(1)), 1);
    }

    #[test]
    fn roundtrip() {
        let inst = read_netd(SAMPLE.as_bytes(), None::<&[u8]>).unwrap();
        let (mut nd, mut ar) = (Vec::new(), Vec::new());
        write_netd(&mut nd, &mut ar, &inst).unwrap();
        let back = read_netd(nd.as_slice(), Some(ar.as_slice())).unwrap();
        assert_eq!(back.hypergraph.num_nets(), 2);
        assert_eq!(back.pad_offset, inst.pad_offset);
        assert_eq!(
            back.hypergraph.net_pins(NetId(0)),
            inst.hypergraph.net_pins(NetId(0))
        );
    }

    #[test]
    fn continuation_before_source_rejected() {
        let text = "0\n1\n1\n1\n1\na0 l\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn net_count_mismatch_rejected() {
        let text = "0\n2\n5\n2\n2\na0 s\na1 l\n";
        let err = read_netd(text.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.to_string().contains("declared 5 nets"));
    }

    #[test]
    fn bad_module_name_rejected() {
        let text = "0\n1\n1\n1\n1\nx0 s\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn pad_zero_rejected() {
        let text = "0\n1\n1\n1\n0\np0 s\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }
}
