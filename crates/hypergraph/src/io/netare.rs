//! ACM/SIGDA `.netD`/`.are` benchmark format.
//!
//! The classic format referenced in the paper's introduction. A `.netD`
//! file consists of a five-line header —
//!
//! ```text
//! 0
//! <num_pins>
//! <num_nets>
//! <num_modules>
//! <pad_offset>
//! ```
//!
//! — followed by one line per pin: `<module> <s|l> [I|O|B]`, where `s`
//! starts a new net and `l` continues the current one. Modules named `aK`
//! are cells with vertex index `K`; modules named `pK` are pads with vertex
//! index `pad_offset + K - 1`. The companion `.are` file lists
//! `<module> <area>` pairs (and, in the paper's proposed *multi-area*
//! extension, several areas per line).
//!
//! Both readers stream: pins flow straight into the builder net-by-net and
//! `.are` areas patch vertex weights in place, so there is no intermediate
//! net list and no second build pass.

use std::io::{Read, Write};

use crate::io::scan::{Emitter, Scanner};
use crate::io::ParseError;
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Largest element count pre-reserved from a header before any data has
/// been seen.
const MAX_HEADER_RESERVE: usize = 1 << 22;

/// A parsed `.netD` instance: the hypergraph plus the cell/pad distinction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetD {
    /// The netlist hypergraph. Cells occupy the low vertex indices, pads the
    /// high ones (starting at [`NetD::pad_offset`]).
    pub hypergraph: Hypergraph,
    /// Index of the first pad vertex.
    pub pad_offset: usize,
}

impl NetD {
    /// Returns `true` if `vertex` is a pad (I/O terminal).
    pub fn is_pad(&self, vertex: VertexId) -> bool {
        vertex.index() >= self.pad_offset
    }

    /// Number of pad vertices.
    pub fn num_pads(&self) -> usize {
        self.hypergraph.num_vertices() - self.pad_offset
    }
}

/// Resolves the scanner's current token (`aK` or `pK`) to a vertex index.
fn module_index<R: Read>(sc: &Scanner<R>, pad_offset: usize) -> Result<usize, ParseError> {
    let tok = sc.tok();
    let (kind, digits) = match tok.split_first() {
        Some((k, rest)) => (*k, rest),
        None => return Err(sc.err_at_tok("missing module name")),
    };
    let mut idx = 0usize;
    let mut any = false;
    for &b in digits {
        let d = match b {
            b'0'..=b'9' => (b - b'0') as usize,
            _ => return Err(sc.err_at_tok(format!("bad module name `{}`", sc.tok_lossy()))),
        };
        idx = idx
            .checked_mul(10)
            .and_then(|v| v.checked_add(d))
            .ok_or_else(|| sc.err_at_tok(format!("bad module name `{}`", sc.tok_lossy())))?;
        any = true;
    }
    if !any {
        return Err(sc.err_at_tok(format!("bad module name `{}`", sc.tok_lossy())));
    }
    match kind {
        b'a' => Ok(idx),
        b'p' => {
            if idx == 0 {
                return Err(sc.err_at_tok("pads are numbered from p1"));
            }
            Ok(pad_offset + idx - 1)
        }
        _ => Err(sc.err_at_tok(format!(
            "module `{}` must start with `a` or `p`",
            sc.tok_lossy()
        ))),
    }
}

/// Reads a `.netD` netlist and an optional `.are` area file.
///
/// Vertices without an `.are` entry (or when `are` is `None`) get area 1 for
/// cells and 0 for pads — pads are the zero-area terminals of the paper.
///
/// # Errors
/// Returns [`ParseError`] for malformed headers, unknown module names, pins
/// before the first `s` marker, or count mismatches.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_netd;
/// let netd = "0\n4\n2\n3\n2\n\
///             a0 s\na1 l\n\
///             a1 s\np1 l\n";
/// let are = "a0 5\na1 3\np1 0\n";
/// let inst = read_netd(netd.as_bytes(), Some(are.as_bytes()))?;
/// assert_eq!(inst.hypergraph.num_nets(), 2);
/// assert_eq!(inst.num_pads(), 1);
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_netd<R: Read, A: Read>(netd: R, are: Option<A>) -> Result<NetD, ParseError> {
    let mut sc = Scanner::new(netd, b"#");

    let mut header = [0usize; 5];
    for slot in header.iter_mut() {
        if !sc.next_content_line()? {
            return Err(ParseError::malformed(0, "truncated header"));
        }
        *slot = sc.expect_usize("header value")?;
        sc.skip_rest_of_line()?;
    }
    let [_, num_pins, num_nets, num_modules, pad_offset_raw] = header;
    if num_modules > u32::MAX as usize || num_pins > u32::MAX as usize {
        return Err(ParseError::malformed(
            0,
            format!(
                "header declares {num_modules} modules / {num_pins} pins, \
                 exceeding the u32 id range"
            ),
        ));
    }
    // The classic files store the index of the last non-pad module here; we
    // accept either that or the count of non-pad modules (off-by-one safe
    // because pads are zero-area and named explicitly).
    let pad_offset = pad_offset_raw.min(num_modules);

    let mut builder = HypergraphBuilder::with_capacity(
        num_modules.min(MAX_HEADER_RESERVE),
        num_nets.min(MAX_HEADER_RESERVE),
        num_pins.min(MAX_HEADER_RESERVE),
    );
    let mut name = String::new();
    for i in 0..num_modules {
        // Default areas: cells 1, pads 0; an `.are` file patches these.
        let v = builder.add_vertex(if i < pad_offset { 1 } else { 0 });
        name.clear();
        if i < pad_offset {
            name.push('a');
            name.push_str(itoa(i).as_str());
        } else {
            name.push('p');
            name.push_str(itoa(i - pad_offset + 1).as_str());
        }
        builder.set_vertex_name(v, name.as_str());
    }

    let mut current: Vec<VertexId> = Vec::new();
    let mut nets_seen = 0usize;
    let mut pins_seen = 0usize;
    while sc.next_content_line()? {
        sc.token()?;
        let vid = module_index(&sc, pad_offset)?;
        if vid >= num_modules {
            return Err(sc.err_at_tok(format!(
                "module `{}` out of range ({num_modules} modules)",
                sc.tok_lossy()
            )));
        }
        if !sc.token()? {
            return Err(ParseError::malformed(sc.line(), "missing s/l marker"));
        }
        pins_seen += 1;
        match sc.tok() {
            b"s" => {
                if !current.is_empty() {
                    builder.add_net_dedup(1, current.drain(..))?;
                    nets_seen += 1;
                }
                current.push(VertexId::from_index(vid));
            }
            b"l" => {
                if current.is_empty() {
                    return Err(ParseError::malformed(
                        sc.line(),
                        "continuation pin before any `s` marker",
                    ));
                }
                current.push(VertexId::from_index(vid));
            }
            _ => {
                return Err(sc.err_at_tok(format!(
                    "unknown pin marker `{}` (expected `s` or `l`)",
                    sc.tok_lossy()
                )))
            }
        }
        // Any trailing direction token (I/O/B) is ignored.
        sc.skip_rest_of_line()?;
    }
    if !current.is_empty() {
        builder.add_net_dedup(1, current.drain(..))?;
        nets_seen += 1;
    }
    if nets_seen != num_nets {
        return Err(ParseError::malformed(
            0,
            format!("header declared {num_nets} nets, found {nets_seen}"),
        ));
    }
    if pins_seen != num_pins {
        return Err(ParseError::malformed(
            0,
            format!("header declared {num_pins} pins, found {pins_seen}"),
        ));
    }

    if let Some(are) = are {
        let mut sc = Scanner::new(are, b"#");
        while sc.next_content_line()? {
            sc.token()?;
            let vid = module_index(&sc, pad_offset)?;
            let module_line = sc.tok_line();
            if !sc.token()? {
                return Err(ParseError::malformed(module_line, "missing area"));
            }
            let area = sc.parse_u64("area value")?;
            if vid >= num_modules {
                return Err(ParseError::malformed(module_line, "module out of range"));
            }
            builder.set_vertex_weight(VertexId::from_index(vid), area);
            sc.skip_rest_of_line()?;
        }
    }

    Ok(NetD {
        hypergraph: builder.build()?,
        pad_offset,
    })
}

/// Stack-allocated decimal formatting for the generated module names.
fn itoa(v: usize) -> String {
    // Names go through the builder's name log as `String`s anyway; this
    // keeps the hot concatenation free of `format!` machinery.
    let mut s = String::with_capacity(20);
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut v = v;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
    s
}

/// Writes a [`NetD`] instance as a `.netD` file and its areas as `.are`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_netd<W: Write, A: Write>(netd_out: W, are_out: A, inst: &NetD) -> std::io::Result<()> {
    let hg = &inst.hypergraph;
    fn emit_name<W: Write>(
        e: &mut Emitter<W>,
        v: VertexId,
        pad_offset: usize,
    ) -> std::io::Result<()> {
        if v.index() < pad_offset {
            e.byte(b'a')?;
            e.int(v.index() as u64)
        } else {
            e.byte(b'p')?;
            e.int((v.index() - pad_offset + 1) as u64)
        }
    }
    let mut nd = Emitter::new(netd_out);
    nd.str("0\n")?;
    nd.int(hg.num_pins() as u64)?;
    nd.byte(b'\n')?;
    nd.int(hg.num_nets() as u64)?;
    nd.byte(b'\n')?;
    nd.int(hg.num_vertices() as u64)?;
    nd.byte(b'\n')?;
    nd.int(inst.pad_offset as u64)?;
    nd.byte(b'\n')?;
    for n in hg.nets() {
        for (i, &p) in hg.net_pins(n).iter().enumerate() {
            emit_name(&mut nd, p, inst.pad_offset)?;
            nd.str(if i == 0 { " s\n" } else { " l\n" })?;
        }
    }
    nd.finish()?;

    let mut ar = Emitter::new(are_out);
    for v in hg.vertices() {
        emit_name(&mut ar, v, inst.pad_offset)?;
        ar.byte(b' ')?;
        ar.int(hg.vertex_weight(v))?;
        ar.byte(b'\n')?;
    }
    ar.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetId;

    const SAMPLE: &str = "0\n5\n2\n4\n3\na0 s\na1 l\np1 l\na2 s\na1 l\n";

    #[test]
    fn parse_sample() {
        let inst = read_netd(SAMPLE.as_bytes(), None::<&[u8]>).unwrap();
        let hg = &inst.hypergraph;
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.num_pins(), 5);
        assert_eq!(inst.pad_offset, 3);
        assert_eq!(inst.num_pads(), 1);
        assert!(inst.is_pad(VertexId(3)));
        assert!(!inst.is_pad(VertexId(2)));
        // default areas: cells 1, pads 0
        assert_eq!(hg.vertex_weight(VertexId(0)), 1);
        assert_eq!(hg.vertex_weight(VertexId(3)), 0);
        assert_eq!(hg.vertex_name(VertexId(3)), Some("p1"));
    }

    #[test]
    fn areas_applied() {
        let are = "a0 7\np1 2\n";
        let inst = read_netd(SAMPLE.as_bytes(), Some(are.as_bytes())).unwrap();
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(0)), 7);
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(3)), 2);
        assert_eq!(inst.hypergraph.vertex_weight(VertexId(1)), 1);
    }

    #[test]
    fn roundtrip() {
        let inst = read_netd(SAMPLE.as_bytes(), None::<&[u8]>).unwrap();
        let (mut nd, mut ar) = (Vec::new(), Vec::new());
        write_netd(&mut nd, &mut ar, &inst).unwrap();
        let back = read_netd(nd.as_slice(), Some(ar.as_slice())).unwrap();
        assert_eq!(back.hypergraph.num_nets(), 2);
        assert_eq!(back.pad_offset, inst.pad_offset);
        assert_eq!(
            back.hypergraph.net_pins(NetId(0)),
            inst.hypergraph.net_pins(NetId(0))
        );
    }

    #[test]
    fn continuation_before_source_rejected() {
        let text = "0\n1\n1\n1\n1\na0 l\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn net_count_mismatch_rejected() {
        let text = "0\n2\n5\n2\n2\na0 s\na1 l\n";
        let err = read_netd(text.as_bytes(), None::<&[u8]>).unwrap_err();
        assert!(err.to_string().contains("declared 5 nets"));
    }

    #[test]
    fn bad_module_name_rejected() {
        let text = "0\n1\n1\n1\n1\nx0 s\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn pad_zero_rejected() {
        let text = "0\n1\n1\n1\n0\np0 s\n";
        assert!(read_netd(text.as_bytes(), None::<&[u8]>).is_err());
    }

    #[test]
    fn direction_suffix_tokens_ignored() {
        let text = "0\n2\n1\n2\n2\na0 s I\na1 l O\n";
        let inst = read_netd(text.as_bytes(), None::<&[u8]>).unwrap();
        assert_eq!(inst.hypergraph.num_pins(), 2);
    }
}
