//! `.fix` fixed-vertex files.
//!
//! One line per vertex, in vertex order:
//!
//! * `-1` — the vertex is free (hMetis convention);
//! * `P` — the vertex is fixed in partition `P`;
//! * `P,Q,...` — the vertex is fixed in *one of* the listed partitions
//!   (the paper's "or" semantics for propagated terminals, Section IV).
//!
//! Lines starting with `%` are comments.

use std::io::{BufRead, BufReader, Read, Write};

use crate::io::ParseError;
use crate::{FixedVertices, Fixity, PartId, PartSet};

/// Reads a `.fix` file covering `num_vertices` vertices.
///
/// # Errors
/// Returns [`ParseError`] if the file has the wrong number of entries, a
/// malformed token, or a partition index ≥ 64.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_fix;
/// use vlsi_hypergraph::{Fixity, PartId, VertexId};
/// let fx = read_fix("-1\n1\n0,2\n".as_bytes(), 3)?;
/// assert!(fx.fixity(VertexId(0)).is_free());
/// assert_eq!(fx.fixity(VertexId(1)), Fixity::Fixed(PartId(1)));
/// assert!(fx.fixity(VertexId(2)).allows(PartId(2)));
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_fix<R: Read>(reader: R, num_vertices: usize) -> Result<FixedVertices, ParseError> {
    let buf = BufReader::new(reader);
    let mut fixities = Vec::with_capacity(num_vertices);
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if fixities.len() == num_vertices {
            return Err(ParseError::malformed(
                line_no,
                format!("more than {num_vertices} fixity entries"),
            ));
        }
        if trimmed == "-1" {
            fixities.push(Fixity::Free);
            continue;
        }
        let mut set = PartSet::new();
        for tok in trimmed.split(',') {
            let p: u32 = tok.trim().parse().map_err(|_| {
                ParseError::malformed(line_no, format!("bad partition index `{tok}`"))
            })?;
            if p as usize >= PartSet::MAX_PARTS {
                return Err(ParseError::malformed(
                    line_no,
                    format!("partition index {p} exceeds the maximum of 63"),
                ));
            }
            set.insert(PartId(p));
        }
        fixities.push(if set.len() == 1 {
            Fixity::Fixed(set.iter().next().expect("non-empty set"))
        } else {
            Fixity::FixedAny(set)
        });
    }
    if fixities.len() != num_vertices {
        return Err(ParseError::malformed(
            0,
            format!(
                "expected {num_vertices} fixity entries, found {}",
                fixities.len()
            ),
        ));
    }
    Ok(FixedVertices::from_fixities(fixities))
}

/// Writes a `.fix` file.
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn write_fix<W: Write>(mut writer: W, fixed: &FixedVertices) -> std::io::Result<()> {
    for fixity in fixed.as_slice() {
        match fixity {
            Fixity::Free => writeln!(writer, "-1")?,
            Fixity::Fixed(p) => writeln!(writer, "{}", p.0)?,
            Fixity::FixedAny(set) => {
                let parts: Vec<String> = set.iter().map(|p| p.0.to_string()).collect();
                writeln!(writer, "{}", parts.join(","))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn roundtrip_all_fixity_kinds() {
        let mut fx = FixedVertices::all_free(4);
        fx.fix(VertexId(1), PartId(0));
        fx.fix_any(VertexId(2), [PartId(1), PartId(3)].into_iter().collect());
        let mut out = Vec::new();
        write_fix(&mut out, &fx).unwrap();
        let back = read_fix(out.as_slice(), 4).unwrap();
        assert_eq!(back, fx);
    }

    #[test]
    fn single_element_or_becomes_fixed() {
        let fx = read_fix("2\n".as_bytes(), 1).unwrap();
        assert_eq!(fx.fixity(VertexId(0)), Fixity::Fixed(PartId(2)));
    }

    #[test]
    fn count_mismatch_rejected() {
        assert!(read_fix("-1\n".as_bytes(), 2).is_err());
        assert!(read_fix("-1\n-1\n-1\n".as_bytes(), 2).is_err());
    }

    #[test]
    fn comments_skipped() {
        let fx = read_fix("% hi\n-1\n".as_bytes(), 1).unwrap();
        assert!(fx.fixity(VertexId(0)).is_free());
    }

    #[test]
    fn oversized_part_index_rejected() {
        assert!(read_fix("64\n".as_bytes(), 1).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(read_fix("zero\n".as_bytes(), 1).is_err());
    }
}
