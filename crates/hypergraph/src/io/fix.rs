//! `.fix` fixed-vertex files.
//!
//! One line per vertex, in vertex order:
//!
//! * `-1` — the vertex is free (hMetis convention);
//! * `P` — the vertex is fixed in partition `P`;
//! * `P,Q,...` — the vertex is fixed in *one of* the listed partitions
//!   (the paper's "or" semantics for propagated terminals, Section IV).
//!
//! Lines starting with `%` are comments. The reader streams through a
//! fixed buffer — no per-line allocation.

use std::io::{Read, Write};

use crate::io::scan::{Emitter, Scanner};
use crate::io::ParseError;
use crate::{FixedVertices, Fixity, PartId, PartSet};

/// Reads a `.fix` file covering `num_vertices` vertices.
///
/// # Errors
/// Returns [`ParseError`] if the file has the wrong number of entries, a
/// malformed token, or a partition index ≥ 64.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_fix;
/// use vlsi_hypergraph::{Fixity, PartId, VertexId};
/// let fx = read_fix("-1\n1\n0,2\n".as_bytes(), 3)?;
/// assert!(fx.fixity(VertexId(0)).is_free());
/// assert_eq!(fx.fixity(VertexId(1)), Fixity::Fixed(PartId(1)));
/// assert!(fx.fixity(VertexId(2)).allows(PartId(2)));
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_fix<R: Read>(reader: R, num_vertices: usize) -> Result<FixedVertices, ParseError> {
    let mut sc = Scanner::new(reader, b"%");
    let mut fixities = Vec::with_capacity(num_vertices.min(1 << 22));
    while sc.next_content_line()? {
        sc.token()?;
        if fixities.len() == num_vertices {
            return Err(sc.err_at_tok(format!("more than {num_vertices} fixity entries")));
        }
        let entry = parse_entry(&sc)?;
        if sc.token()? {
            return Err(sc.err_at_tok(format!(
                "unexpected token `{}` after fixity entry",
                sc.tok_lossy()
            )));
        }
        fixities.push(entry);
    }
    if fixities.len() != num_vertices {
        return Err(ParseError::malformed(
            0,
            format!(
                "expected {num_vertices} fixity entries, found {}",
                fixities.len()
            ),
        ));
    }
    Ok(FixedVertices::from_fixities(fixities))
}

/// Interprets the scanner's current token as one fixity entry.
fn parse_entry<R: Read>(sc: &Scanner<R>) -> Result<Fixity, ParseError> {
    let tok = sc.tok();
    if tok == b"-1" {
        return Ok(Fixity::Free);
    }
    let mut set = PartSet::new();
    for seg in tok.split(|&b| b == b',') {
        let mut p: u32 = 0;
        if seg.is_empty() {
            return Err(sc.err_at_tok("bad partition index ``".to_string()));
        }
        for &b in seg {
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                _ => {
                    return Err(sc.err_at_tok(format!(
                        "bad partition index `{}`",
                        String::from_utf8_lossy(seg)
                    )))
                }
            };
            p = p
                .checked_mul(10)
                .and_then(|v| v.checked_add(digit))
                .ok_or_else(|| {
                    sc.err_at_tok(format!(
                        "bad partition index `{}`",
                        String::from_utf8_lossy(seg)
                    ))
                })?;
        }
        if p as usize >= PartSet::MAX_PARTS {
            return Err(sc.err_at_tok(format!("partition index {p} exceeds the maximum of 63")));
        }
        set.insert(PartId(p));
    }
    Ok(if set.len() == 1 {
        Fixity::Fixed(set.iter().next().expect("non-empty set"))
    } else {
        Fixity::FixedAny(set)
    })
}

/// Writes a `.fix` file.
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn write_fix<W: Write>(writer: W, fixed: &FixedVertices) -> std::io::Result<()> {
    let mut e = Emitter::new(writer);
    for fixity in fixed.as_slice() {
        match fixity {
            Fixity::Free => e.str("-1")?,
            Fixity::Fixed(p) => e.int(u64::from(p.0))?,
            Fixity::FixedAny(set) => {
                for (i, p) in set.iter().enumerate() {
                    if i > 0 {
                        e.byte(b',')?;
                    }
                    e.int(u64::from(p.0))?;
                }
            }
        }
        e.byte(b'\n')?;
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn roundtrip_all_fixity_kinds() {
        let mut fx = FixedVertices::all_free(4);
        fx.fix(VertexId(1), PartId(0));
        fx.fix_any(VertexId(2), [PartId(1), PartId(3)].into_iter().collect());
        let mut out = Vec::new();
        write_fix(&mut out, &fx).unwrap();
        let back = read_fix(out.as_slice(), 4).unwrap();
        assert_eq!(back, fx);
    }

    #[test]
    fn single_element_or_becomes_fixed() {
        let fx = read_fix("2\n".as_bytes(), 1).unwrap();
        assert_eq!(fx.fixity(VertexId(0)), Fixity::Fixed(PartId(2)));
    }

    #[test]
    fn count_mismatch_rejected() {
        assert!(read_fix("-1\n".as_bytes(), 2).is_err());
        assert!(read_fix("-1\n-1\n-1\n".as_bytes(), 2).is_err());
    }

    #[test]
    fn comments_skipped() {
        let fx = read_fix("% hi\n-1\n".as_bytes(), 1).unwrap();
        assert!(fx.fixity(VertexId(0)).is_free());
    }

    #[test]
    fn oversized_part_index_rejected() {
        assert!(read_fix("64\n".as_bytes(), 1).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(read_fix("zero\n".as_bytes(), 1).is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(read_fix("0 2\n".as_bytes(), 1).is_err());
    }
}
