//! hMetis `.hgr` reader and writer.
//!
//! Format (hMetis manual §5): the first non-comment line is
//! `num_nets num_vertices [fmt]` where `fmt` is `1` (net weights), `10`
//! (vertex weights) or `11` (both). Then one line per net: optional weight
//! followed by 1-based vertex indices; finally, with vertex weights, one
//! weight per line. Lines starting with `%` are comments.

use std::io::{BufRead, BufReader, Read, Write};

use crate::io::ParseError;
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Reads an hMetis-format hypergraph.
///
/// # Errors
/// Returns [`ParseError`] on I/O failure, malformed tokens, out-of-range
/// vertex indices, or empty nets. Duplicate pins within a net are tolerated
/// (deduplicated), matching hMetis behaviour.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_hgr;
/// let text = "% tiny\n2 3 11\n7 1 2\n3 2 3\n4\n5\n6\n";
/// let hg = read_hgr(text.as_bytes())?;
/// assert_eq!(hg.num_nets(), 2);
/// assert_eq!(hg.vertex_weight(vlsi_hypergraph::VertexId(0)), 4);
/// assert_eq!(hg.net_weight(vlsi_hypergraph::NetId(1)), 3);
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_hgr<R: Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let buf = BufReader::new(reader);
    let mut lines = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        lines.push((idx + 1, trimmed.to_string()));
    }
    let mut it = lines.into_iter();
    let (hdr_line, header) = it
        .next()
        .ok_or_else(|| ParseError::malformed(1, "missing header line"))?;
    let mut hdr = header.split_whitespace();
    let num_nets: usize = parse_tok(hdr.next(), hdr_line, "net count")?;
    let num_vertices: usize = parse_tok(hdr.next(), hdr_line, "vertex count")?;
    let fmt: u32 = match hdr.next() {
        Some(tok) => tok
            .parse()
            .map_err(|_| ParseError::malformed(hdr_line, format!("bad fmt field `{tok}`")))?,
        None => 0,
    };
    let (net_weights, vertex_weights) = match fmt {
        0 => (false, false),
        1 => (true, false),
        10 => (false, true),
        11 => (true, true),
        other => {
            return Err(ParseError::malformed(
                hdr_line,
                format!("unsupported fmt `{other}` (expected 0, 1, 10 or 11)"),
            ))
        }
    };

    let mut builder = HypergraphBuilder::new();
    // Vertex weights come *after* the nets, so create unit vertices now and
    // patch weights by rebuilding if needed.
    let mut weights = vec![1u64; num_vertices];
    let mut nets: Vec<(u64, Vec<VertexId>)> = Vec::with_capacity(num_nets);

    for _ in 0..num_nets {
        let (line_no, line) = it
            .next()
            .ok_or_else(|| ParseError::malformed(hdr_line, "fewer net lines than declared"))?;
        let mut toks = line.split_whitespace();
        let weight: u64 = if net_weights {
            parse_tok(toks.next(), line_no, "net weight")?
        } else {
            1
        };
        let mut pins = Vec::new();
        for tok in toks {
            let idx: usize = tok
                .parse()
                .map_err(|_| ParseError::malformed(line_no, format!("bad vertex index `{tok}`")))?;
            if idx == 0 || idx > num_vertices {
                return Err(ParseError::malformed(
                    line_no,
                    format!("vertex index {idx} out of range 1..={num_vertices}"),
                ));
            }
            pins.push(VertexId::from_index(idx - 1));
        }
        if pins.is_empty() {
            return Err(ParseError::malformed(line_no, "net with no pins"));
        }
        nets.push((weight, pins));
    }

    if vertex_weights {
        for w in weights.iter_mut() {
            let (line_no, line) = it.next().ok_or_else(|| {
                ParseError::malformed(hdr_line, "fewer vertex-weight lines than declared")
            })?;
            *w = line
                .split_whitespace()
                .next()
                .ok_or_else(|| ParseError::malformed(line_no, "empty vertex weight line"))?
                .parse()
                .map_err(|_| ParseError::malformed(line_no, "bad vertex weight"))?;
        }
    }

    for &w in &weights {
        builder.add_vertex(w);
    }
    for (w, pins) in nets {
        builder.add_net_dedup(w, pins)?;
    }
    Ok(builder.build()?)
}

/// Writes a hypergraph in hMetis format (fmt 11: both weight kinds).
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn write_hgr<W: Write>(mut writer: W, hg: &Hypergraph) -> std::io::Result<()> {
    writeln!(writer, "{} {} 11", hg.num_nets(), hg.num_vertices())?;
    for n in hg.nets() {
        write!(writer, "{}", hg.net_weight(n))?;
        for p in hg.net_pins(n) {
            write!(writer, " {}", p.index() + 1)?;
        }
        writeln!(writer)?;
    }
    for v in hg.vertices() {
        writeln!(writer, "{}", hg.vertex_weight(v))?;
    }
    Ok(())
}

fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let tok = tok.ok_or_else(|| ParseError::malformed(line, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| ParseError::malformed(line, format!("bad {what} `{tok}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetId;

    #[test]
    fn roundtrip() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as u64 + 1)).collect();
        b.add_net(5, [v[0], v[1], v[3]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();

        let mut out = Vec::new();
        write_hgr(&mut out, &hg).unwrap();
        let back = read_hgr(out.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_nets(), 2);
        assert_eq!(back.net_weight(NetId(0)), 5);
        assert_eq!(back.net_pins(NetId(0)), hg.net_pins(NetId(0)));
        assert_eq!(back.vertex_weight(VertexId(2)), 3);
    }

    #[test]
    fn unweighted_fmt_defaults_to_ones() {
        let text = "2 3\n1 2\n2 3\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_weight(NetId(0)), 1);
        assert_eq!(hg.vertex_weight(VertexId(0)), 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "% header comment\n\n1 2 1\n% net comment\n9 1 2\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_weight(NetId(0)), 9);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let text = "1 2\n1 3\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_index_rejected() {
        let text = "1 2\n0 1\n";
        assert!(read_hgr(text.as_bytes()).is_err());
    }

    #[test]
    fn missing_net_lines_rejected() {
        let text = "3 2\n1 2\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("fewer net lines"));
    }

    #[test]
    fn bad_fmt_rejected() {
        let text = "1 2 99\n1 2\n";
        assert!(read_hgr(text.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_pins_deduplicated() {
        let text = "1 2\n1 2 1\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_size(NetId(0)), 2);
    }
}
