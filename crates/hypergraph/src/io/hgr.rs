//! hMetis `.hgr` reader and writer.
//!
//! Format (hMetis manual §5): the first non-comment line is
//! `num_nets num_vertices [fmt]` where `fmt` is `1` (net weights), `10`
//! (vertex weights) or `11` (both). Then one line per net: optional weight
//! followed by 1-based vertex indices; finally, with vertex weights, one
//! weight per line. Lines starting with `%` are comments.
//!
//! The reader streams: bytes flow through a fixed buffer straight into the
//! [`HypergraphBuilder`], so memory is bounded by the graph being built,
//! never by the file (no per-line `String`s, no vector of lines).

use std::io::{Read, Write};

use crate::io::scan::{Emitter, Scanner};
use crate::io::ParseError;
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Largest element count we pre-reserve from a header before any data has
/// been seen — a malformed header must not allocate unbounded memory.
const MAX_HEADER_RESERVE: usize = 1 << 22;

/// Reads an hMetis-format hypergraph.
///
/// # Errors
/// Returns [`ParseError`] on I/O failure, malformed tokens, out-of-range
/// vertex indices, empty nets, or counts beyond the `u32` id range (the
/// compact CSR layout stores ids and offsets in 32 bits). Token-level
/// errors carry the absolute byte offset as well as the line number.
/// Duplicate pins within a net are tolerated (deduplicated), matching
/// hMetis behaviour.
///
/// # Example
/// ```
/// use vlsi_hypergraph::io::read_hgr;
/// let text = "% tiny\n2 3 11\n7 1 2\n3 2 3\n4\n5\n6\n";
/// let hg = read_hgr(text.as_bytes())?;
/// assert_eq!(hg.num_nets(), 2);
/// assert_eq!(hg.vertex_weight(vlsi_hypergraph::VertexId(0)), 4);
/// assert_eq!(hg.net_weight(vlsi_hypergraph::NetId(1)), 3);
/// # Ok::<(), vlsi_hypergraph::io::ParseError>(())
/// ```
pub fn read_hgr<R: Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let mut sc = Scanner::new(reader, b"%");
    if !sc.next_content_line()? {
        return Err(ParseError::malformed(1, "missing header line"));
    }
    let num_nets = sc.expect_usize("net count")?;
    if num_nets > u32::MAX as usize {
        return Err(sc.err_at_tok(format!("net count {num_nets} exceeds the u32 id range")));
    }
    let num_vertices = sc.expect_usize("vertex count")?;
    if num_vertices > u32::MAX as usize {
        return Err(sc.err_at_tok(format!(
            "vertex count {num_vertices} exceeds the u32 id range"
        )));
    }
    let (net_weights, vertex_weights) = if sc.token()? {
        match sc.parse_u64("fmt field")? {
            0 => (false, false),
            1 => (true, false),
            10 => (false, true),
            11 => (true, true),
            other => {
                return Err(sc.err_at_tok(format!(
                    "unsupported fmt `{other}` (expected 0, 1, 10 or 11)"
                )))
            }
        }
    } else {
        (false, false)
    };
    sc.skip_rest_of_line()?;

    let mut builder = HypergraphBuilder::with_capacity(
        num_vertices.min(MAX_HEADER_RESERVE),
        num_nets.min(MAX_HEADER_RESERVE),
        0,
    );
    // Vertex weights come *after* the nets; create unit vertices now and
    // patch each weight as its line streams past.
    for _ in 0..num_vertices {
        builder.add_vertex(1);
    }

    let mut pins: Vec<VertexId> = Vec::new();
    for _ in 0..num_nets {
        if !sc.next_content_line()? {
            return Err(ParseError::malformed(
                sc.line(),
                "fewer net lines than declared",
            ));
        }
        let weight: u64 = if net_weights {
            sc.expect_u64("net weight")?
        } else {
            1
        };
        pins.clear();
        while sc.token()? {
            let idx = sc.parse_u64("vertex index")?;
            if idx == 0 || idx > num_vertices as u64 {
                return Err(sc.err_at_tok(format!(
                    "vertex index {idx} out of range 1..={num_vertices}"
                )));
            }
            pins.push(VertexId::from_index(idx as usize - 1));
        }
        if pins.is_empty() {
            return Err(ParseError::malformed(sc.line(), "net with no pins"));
        }
        builder.add_net_dedup(weight, pins.iter().copied())?;
    }

    if vertex_weights {
        for i in 0..num_vertices {
            if !sc.next_content_line()? {
                return Err(ParseError::malformed(
                    sc.line(),
                    "fewer vertex-weight lines than declared",
                ));
            }
            let w = sc.expect_u64("vertex weight")?;
            sc.skip_rest_of_line()?;
            builder.set_vertex_weight(VertexId::from_index(i), w);
        }
    }
    Ok(builder.build()?)
}

/// Writes a hypergraph in hMetis format (fmt 11: both weight kinds).
///
/// Output is buffered and integers are formatted without allocation, so a
/// million-net graph streams out in large writes.
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn write_hgr<W: Write>(writer: W, hg: &Hypergraph) -> std::io::Result<()> {
    let mut e = Emitter::new(writer);
    e.int(hg.num_nets() as u64)?;
    e.byte(b' ')?;
    e.int(hg.num_vertices() as u64)?;
    e.str(" 11\n")?;
    for n in hg.nets() {
        e.int(hg.net_weight(n))?;
        for p in hg.net_pins(n) {
            e.byte(b' ')?;
            e.int(p.index() as u64 + 1)?;
        }
        e.byte(b'\n')?;
    }
    for v in hg.vertices() {
        e.int(hg.vertex_weight(v))?;
        e.byte(b'\n')?;
    }
    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetId;

    #[test]
    fn roundtrip() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as u64 + 1)).collect();
        b.add_net(5, [v[0], v[1], v[3]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();

        let mut out = Vec::new();
        write_hgr(&mut out, &hg).unwrap();
        let back = read_hgr(out.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 4);
        assert_eq!(back.num_nets(), 2);
        assert_eq!(back.net_weight(NetId(0)), 5);
        assert_eq!(back.net_pins(NetId(0)), hg.net_pins(NetId(0)));
        assert_eq!(back.vertex_weight(VertexId(2)), 3);
    }

    #[test]
    fn unweighted_fmt_defaults_to_ones() {
        let text = "2 3\n1 2\n2 3\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_weight(NetId(0)), 1);
        assert_eq!(hg.vertex_weight(VertexId(0)), 1);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "% header comment\n\n1 2 1\n% net comment\n9 1 2\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_weight(NetId(0)), 9);
    }

    #[test]
    fn out_of_range_index_rejected() {
        let text = "1 2\n1 3\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn zero_index_rejected() {
        let text = "1 2\n0 1\n";
        assert!(read_hgr(text.as_bytes()).is_err());
    }

    #[test]
    fn missing_net_lines_rejected() {
        let text = "3 2\n1 2\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("fewer net lines"));
    }

    #[test]
    fn bad_fmt_rejected() {
        let text = "1 2 99\n1 2\n";
        assert!(read_hgr(text.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_pins_deduplicated() {
        let text = "1 2\n1 2 1\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_size(NetId(0)), 2);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // The bad index `9` sits at byte 6 of "1 2\n1 9\n".
        let err = read_hgr("1 2\n1 9\n".as_bytes()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "line 2 (byte 6): vertex index 9 out of range 1..=2"
        );
    }

    #[test]
    fn counts_beyond_u32_are_structured_errors() {
        let text = "1 5000000000\n1 2\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the u32 id range"),
            "{err}"
        );
        let text = "5000000000 1\n";
        let err = read_hgr(text.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("exceeds the u32 id range"),
            "{err}"
        );
    }

    #[test]
    fn trailing_tokens_after_fmt_ignored() {
        let text = "1 2 1 extra stuff\n4 1 2\n";
        let hg = read_hgr(text.as_bytes()).unwrap();
        assert_eq!(hg.net_weight(NetId(0)), 4);
    }
}
