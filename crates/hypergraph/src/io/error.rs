//! Parse errors for the instance file formats.

use std::error::Error;
use std::fmt;
use std::io;

use crate::BuildError;

/// Error produced while parsing an instance file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be interpreted.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A token could not be interpreted; like [`ParseError::Malformed`]
    /// but additionally carrying the absolute byte offset of the offending
    /// token — in a million-line file, `head -c <offset>` beats counting
    /// lines.
    MalformedAt {
        /// 1-based line number.
        line: usize,
        /// 0-based absolute byte offset of the offending token.
        byte_offset: u64,
        /// Explanation of the problem.
        message: String,
    },
    /// The parsed tokens described an invalid hypergraph.
    Build(BuildError),
}

impl ParseError {
    /// Builds a [`ParseError::Malformed`] for `line` (1-based) — public so
    /// downstream parsers of related formats (e.g. Bookshelf) can reuse the
    /// error type.
    pub fn malformed(line: usize, message: impl Into<String>) -> Self {
        ParseError::Malformed {
            line,
            message: message.into(),
        }
    }

    /// Builds a [`ParseError::MalformedAt`] carrying both the 1-based line
    /// number and the absolute byte offset of the offending token.
    pub fn malformed_at(line: usize, byte_offset: u64, message: impl Into<String>) -> Self {
        ParseError::MalformedAt {
            line,
            byte_offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseError::MalformedAt {
                line,
                byte_offset,
                message,
            } => {
                write!(f, "line {line} (byte {byte_offset}): {message}")
            }
            ParseError::Build(e) => write!(f, "invalid hypergraph: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Build(e) => Some(e),
            ParseError::Malformed { .. } | ParseError::MalformedAt { .. } => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<BuildError> for ParseError {
    fn from(e: BuildError) -> Self {
        ParseError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let e = ParseError::malformed(7, "bad token");
        assert_eq!(e.to_string(), "line 7: bad token");
    }

    #[test]
    fn display_includes_byte_offset_when_known() {
        let e = ParseError::malformed_at(7, 123, "bad token");
        assert_eq!(e.to_string(), "line 7 (byte 123): bad token");
    }

    #[test]
    fn sources_are_chained() {
        let e = ParseError::from(io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
