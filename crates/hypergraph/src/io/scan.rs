//! Streaming byte scanner and buffered emitter shared by the file-format
//! parsers.
//!
//! [`Scanner`] reads raw bytes through a fixed-size buffer and hands out
//! whitespace-separated tokens one at a time — no per-line `String`, no
//! vector of lines, so parsing a million-line `.hgr` allocates a single
//! buffer plus one small token scratch regardless of file size. It tracks
//! both the 1-based line number and the absolute byte offset of every
//! token so errors in huge files are addressable with `dd`/`head -c`.
//!
//! [`Emitter`] is the write-side dual: manual integer formatting into one
//! fixed buffer, flushed in large chunks, so writers never pay a syscall
//! or a `format!` allocation per token.

use std::io::{Read, Write};

use crate::io::ParseError;

const READ_BUF: usize = 64 * 1024;
const WRITE_BUF: usize = 64 * 1024;

/// A line-aware streaming tokenizer over any [`Read`].
pub(crate) struct Scanner<R> {
    src: R,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    hit_eof: bool,
    /// 1-based line number of the byte at `pos`.
    line: usize,
    /// Absolute byte offset of the byte at `pos`.
    offset: u64,
    /// Bytes that start a whole-line comment (checked at line starts only).
    comments: &'static [u8],
    /// The current token, copied out so it survives buffer refills.
    tok: Vec<u8>,
    tok_line: usize,
    tok_offset: u64,
}

impl<R: Read> Scanner<R> {
    pub(crate) fn new(src: R, comments: &'static [u8]) -> Self {
        Scanner {
            src,
            buf: vec![0; READ_BUF],
            pos: 0,
            len: 0,
            hit_eof: false,
            line: 1,
            offset: 0,
            comments,
            tok: Vec::new(),
            tok_line: 1,
            tok_offset: 0,
        }
    }

    fn peek(&mut self) -> Result<Option<u8>, ParseError> {
        while self.pos == self.len {
            if self.hit_eof {
                return Ok(None);
            }
            self.len = self.src.read(&mut self.buf)?;
            self.pos = 0;
            if self.len == 0 {
                self.hit_eof = true;
                return Ok(None);
            }
        }
        Ok(Some(self.buf[self.pos]))
    }

    fn bump(&mut self) {
        if self.buf[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        self.offset += 1;
    }

    /// Consumes bytes up to and including the next `\n` (or EOF).
    pub(crate) fn skip_rest_of_line(&mut self) -> Result<(), ParseError> {
        while let Some(b) = self.peek()? {
            let was_newline = b == b'\n';
            self.bump();
            if was_newline {
                break;
            }
        }
        Ok(())
    }

    /// Positions the scanner at the first token of the next non-blank,
    /// non-comment line. Returns `false` at EOF. Must be called at a line
    /// start (the initial position, or after the previous line's tokens
    /// are exhausted / skipped).
    pub(crate) fn next_content_line(&mut self) -> Result<bool, ParseError> {
        loop {
            match self.peek()? {
                None => return Ok(false),
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => self.bump(),
                Some(b) if self.comments.contains(&b) => self.skip_rest_of_line()?,
                Some(_) => return Ok(true),
            }
        }
    }

    /// Reads the next whitespace-separated token on the *current* line into
    /// the internal scratch. Returns `false` at the end of the line (the
    /// newline itself is left unconsumed) or at EOF.
    pub(crate) fn token(&mut self) -> Result<bool, ParseError> {
        loop {
            match self.peek()? {
                None | Some(b'\n') => return Ok(false),
                Some(b' ') | Some(b'\t') | Some(b'\r') => self.bump(),
                Some(_) => break,
            }
        }
        self.tok.clear();
        self.tok_line = self.line;
        self.tok_offset = self.offset;
        while let Some(b) = self.peek()? {
            if b.is_ascii_whitespace() {
                break;
            }
            self.tok.push(b);
            self.bump();
        }
        Ok(true)
    }

    /// Bytes of the most recent token.
    pub(crate) fn tok(&self) -> &[u8] {
        &self.tok
    }

    /// The most recent token as UTF-8 (lossy — tokens are matched or
    /// echoed into error messages, never stored).
    pub(crate) fn tok_lossy(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.tok)
    }

    /// 1-based line number at the current read position.
    pub(crate) fn line(&self) -> usize {
        self.line
    }

    /// Line number where the most recent token started.
    pub(crate) fn tok_line(&self) -> usize {
        self.tok_line
    }

    /// A [`ParseError`] anchored at the most recent token (line + byte).
    pub(crate) fn err_at_tok(&self, message: impl Into<String>) -> ParseError {
        ParseError::malformed_at(self.tok_line, self.tok_offset, message)
    }

    /// Parses the most recent token as an unsigned decimal integer.
    pub(crate) fn parse_u64(&self, what: &str) -> Result<u64, ParseError> {
        let mut value: u64 = 0;
        if self.tok.is_empty() {
            return Err(self.err_at_tok(format!("bad {what} ``")));
        }
        for &b in &self.tok {
            let digit = match b {
                b'0'..=b'9' => u64::from(b - b'0'),
                _ => return Err(self.err_at_tok(format!("bad {what} `{}`", self.tok_lossy()))),
            };
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(digit))
                .ok_or_else(|| {
                    self.err_at_tok(format!("bad {what} `{}` (overflow)", self.tok_lossy()))
                })?;
        }
        Ok(value)
    }

    /// Reads the next token on the line and parses it as `u64`, erroring
    /// with "missing `what`" at the current line if the line is exhausted.
    pub(crate) fn expect_u64(&mut self, what: &str) -> Result<u64, ParseError> {
        if !self.token()? {
            return Err(ParseError::malformed(self.line, format!("missing {what}")));
        }
        self.parse_u64(what)
    }

    /// [`Scanner::expect_u64`] narrowed to `usize`.
    pub(crate) fn expect_usize(&mut self, what: &str) -> Result<usize, ParseError> {
        let v = self.expect_u64(what)?;
        usize::try_from(v)
            .map_err(|_| self.err_at_tok(format!("bad {what} `{}` (overflow)", self.tok_lossy())))
    }
}

/// A buffered writer with allocation-free integer formatting.
pub(crate) struct Emitter<W: Write> {
    out: W,
    buf: Vec<u8>,
}

impl<W: Write> Emitter<W> {
    pub(crate) fn new(out: W) -> Self {
        Emitter {
            out,
            buf: Vec::with_capacity(WRITE_BUF),
        }
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn room(&mut self, need: usize) -> std::io::Result<()> {
        if self.buf.len() + need > WRITE_BUF {
            self.spill()?;
        }
        Ok(())
    }

    /// Appends a decimal integer.
    pub(crate) fn int(&mut self, v: u64) -> std::io::Result<()> {
        self.room(20)?;
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = v;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.buf.extend_from_slice(&digits[i..]);
        Ok(())
    }

    /// Appends a literal string (names, markers, separators).
    pub(crate) fn str(&mut self, s: &str) -> std::io::Result<()> {
        if s.len() >= WRITE_BUF {
            self.spill()?;
            return self.out.write_all(s.as_bytes());
        }
        self.room(s.len())?;
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    /// Appends a single byte (space, newline).
    pub(crate) fn byte(&mut self, b: u8) -> std::io::Result<()> {
        self.room(1)?;
        self.buf.push(b);
        Ok(())
    }

    /// Flushes the remaining buffered bytes.
    pub(crate) fn finish(mut self) -> std::io::Result<()> {
        self.spill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_across_lines_with_comments() {
        let text = "% comment\n 1 22\t333 \n\n% more\n4\n";
        let mut sc = Scanner::new(text.as_bytes(), b"%");
        assert!(sc.next_content_line().unwrap());
        assert_eq!(sc.expect_u64("a").unwrap(), 1);
        assert_eq!(sc.tok_line(), 2);
        assert_eq!(sc.expect_u64("b").unwrap(), 22);
        assert_eq!(sc.expect_u64("c").unwrap(), 333);
        assert!(!sc.token().unwrap(), "line exhausted");
        assert!(sc.next_content_line().unwrap());
        assert_eq!(sc.expect_u64("d").unwrap(), 4);
        assert_eq!(sc.tok_line(), 5);
        assert!(!sc.next_content_line().unwrap());
    }

    #[test]
    fn byte_offsets_are_absolute() {
        let text = "ab\ncd efg\n";
        let mut sc = Scanner::new(text.as_bytes(), b"%");
        assert!(sc.next_content_line().unwrap());
        assert!(sc.token().unwrap());
        assert_eq!(sc.tok_offset, 0);
        assert!(sc.next_content_line().unwrap());
        assert!(sc.token().unwrap());
        assert_eq!(sc.tok_offset, 3);
        assert!(sc.token().unwrap());
        assert_eq!(sc.tok(), b"efg");
        assert_eq!(sc.tok_offset, 6);
    }

    #[test]
    fn tokens_survive_refill_boundaries() {
        // A token that straddles any buffer boundary must come out whole;
        // exercise with a reader that returns one byte at a time.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut sc = Scanner::new(OneByte(b"123456789 42\n"), b"%");
        assert!(sc.next_content_line().unwrap());
        assert_eq!(sc.expect_u64("n").unwrap(), 123456789);
        assert_eq!(sc.expect_u64("m").unwrap(), 42);
    }

    #[test]
    fn integer_overflow_is_an_error_not_a_wrap() {
        let mut sc = Scanner::new("99999999999999999999999\n".as_bytes(), b"%");
        assert!(sc.next_content_line().unwrap());
        let err = sc.expect_u64("count").unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn emitter_formats_integers() {
        let mut out = Vec::new();
        let mut e = Emitter::new(&mut out);
        e.int(0).unwrap();
        e.byte(b' ').unwrap();
        e.int(18446744073709551615).unwrap();
        e.byte(b'\n').unwrap();
        e.str("a7 s").unwrap();
        e.finish().unwrap();
        assert_eq!(out, b"0 18446744073709551615\na7 s");
    }
}
