//! Heterogeneous resource model: multi-dimensional vertex weights and
//! per-partition capacity vectors.
//!
//! The paper's formulation balances one scalar area per vertex against a
//! uniform target. Real placement targets do not: an FPGA device balances
//! several resource types at once (LUTs, FFs, DSPs, BRAM) and a multi-die
//! system gives each die its own capacity vector. This module provides the
//! vocabulary types for that regime:
//!
//! * [`ResourceVec`] — a fixed-arity weight vector, stored flat `u64`,
//!   with component-wise arithmetic and fit checks. This is the owned
//!   counterpart of the `&[u64]` weight rows the CSR side-tables hand out.
//! * [`PartCapacities`] — per-partition capacity vectors with feasibility
//!   and tightest-fit-epsilon checks, convertible to a
//!   [`BalanceConstraint`] for the refinement engines.
//!
//! Both types parse from and render to compact text forms so the CLI and
//! the service protocol can carry them: resources are comma-separated,
//! partitions semicolon-separated (`"100,8;100,8;200,16"`).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::balance::{BalanceConstraint, BalanceError};
use crate::PartId;

/// A fixed-arity, component-wise vector of resource demands or loads.
///
/// # Example
/// ```
/// use vlsi_hypergraph::ResourceVec;
/// let mut acc = ResourceVec::zeros(3);
/// acc.add_assign(&[1, 2, 3]);
/// acc.add_assign(&[4, 0, 1]);
/// assert_eq!(acc.as_slice(), &[5, 2, 4]);
/// assert!(acc.fits_within(&[5, 2, 4]));
/// assert!(!acc.fits_within(&[5, 1, 9]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResourceVec(Vec<u64>);

impl ResourceVec {
    /// An all-zero vector with `dims` components.
    pub fn zeros(dims: usize) -> Self {
        ResourceVec(vec![0; dims])
    }

    /// Wraps an existing weight row.
    pub fn from_slice(w: &[u64]) -> Self {
        ResourceVec(w.to_vec())
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// The flat components.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Component-wise saturating accumulation.
    ///
    /// # Panics
    /// Panics if `w.len() != self.dims()`.
    pub fn add_assign(&mut self, w: &[u64]) {
        assert_eq!(w.len(), self.0.len(), "resource arity mismatch");
        for (a, &b) in self.0.iter_mut().zip(w) {
            *a = a.saturating_add(b);
        }
    }

    /// Component-wise saturating subtraction.
    ///
    /// # Panics
    /// Panics if `w.len() != self.dims()`.
    pub fn sub_assign(&mut self, w: &[u64]) {
        assert_eq!(w.len(), self.0.len(), "resource arity mismatch");
        for (a, &b) in self.0.iter_mut().zip(w) {
            *a = a.saturating_sub(b);
        }
    }

    /// `true` if every component is `<=` the corresponding capacity.
    ///
    /// # Panics
    /// Panics if `caps.len() != self.dims()`.
    pub fn fits_within(&self, caps: &[u64]) -> bool {
        assert_eq!(caps.len(), self.0.len(), "resource arity mismatch");
        self.0.iter().zip(caps).all(|(&l, &c)| l <= c)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`ResourceVec`] or [`PartCapacities`] text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResourceError(String);

impl fmt::Display for ParseResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad resource vector: {}", self.0)
    }
}

impl Error for ParseResourceError {}

impl FromStr for ResourceVec {
    type Err = ParseResourceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseResourceError("empty vector".into()));
        }
        let mut out = Vec::new();
        for tok in s.split(',') {
            let tok = tok.trim();
            out.push(
                tok.parse::<u64>()
                    .map_err(|_| ParseResourceError(format!("'{tok}' is not a u64")))?,
            );
        }
        Ok(ResourceVec(out))
    }
}

/// Per-partition capacity vectors: a flat `num_parts × num_resources`
/// matrix of maximum loads.
///
/// Unlike [`BalanceConstraint`] (which also carries per-part minima for the
/// paper's two-sided tolerance), capacities are one-sided: a part may be
/// arbitrarily empty but never over-full — the FPGA/multi-die regime, where
/// a die's resource budget is a hard ceiling. [`PartCapacities::to_balance`]
/// produces the equivalent zero-minimum constraint for the engines.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{PartCapacities, PartId};
/// let caps = PartCapacities::explicit(2, 2, vec![100, 8, 60, 4]).unwrap();
/// assert_eq!(caps.cap(PartId(1), 0), 60);
/// assert!(caps.check_feasible(&[150, 12]).is_ok());
/// assert!(caps.check_feasible(&[150, 13]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartCapacities {
    num_parts: usize,
    num_resources: usize,
    caps: Vec<u64>,
}

impl PartCapacities {
    /// Every part gets the same capacity vector.
    ///
    /// # Panics
    /// Panics if `num_parts == 0` or `per_part` is empty.
    pub fn uniform(num_parts: usize, per_part: &[u64]) -> Self {
        assert!(num_parts > 0, "need at least one partition");
        assert!(!per_part.is_empty(), "need at least one resource");
        let mut caps = Vec::with_capacity(num_parts * per_part.len());
        for _ in 0..num_parts {
            caps.extend_from_slice(per_part);
        }
        PartCapacities {
            num_parts,
            num_resources: per_part.len(),
            caps,
        }
    }

    /// Fully explicit capacities, row-major `num_parts × num_resources`.
    ///
    /// # Errors
    /// Returns [`BalanceError::ShapeMismatch`] if the vector has the wrong
    /// length.
    pub fn explicit(
        num_parts: usize,
        num_resources: usize,
        caps: Vec<u64>,
    ) -> Result<Self, BalanceError> {
        let expected = num_parts * num_resources;
        if caps.len() != expected {
            return Err(BalanceError::ShapeMismatch {
                expected,
                found: caps.len(),
            });
        }
        Ok(PartCapacities {
            num_parts,
            num_resources,
            caps,
        })
    }

    /// Number of partitions.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of resource types.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Capacity of `part` for `resource`.
    ///
    /// # Panics
    /// Panics if `part` or `resource` is out of range.
    #[inline]
    pub fn cap(&self, part: PartId, resource: usize) -> u64 {
        assert!(resource < self.num_resources);
        self.caps[part.index() * self.num_resources + resource]
    }

    /// The capacity row of one part.
    #[inline]
    pub fn part_row(&self, part: PartId) -> &[u64] {
        let base = part.index() * self.num_resources;
        &self.caps[base..base + self.num_resources]
    }

    /// The flat row-major capacity matrix.
    #[inline]
    pub fn as_flat(&self) -> &[u64] {
        &self.caps
    }

    /// Checks that the aggregate capacity can hold the given per-resource
    /// totals (component-wise).
    ///
    /// # Errors
    /// Returns [`BalanceError::Infeasible`] naming the first resource whose
    /// total exceeds the summed per-part capacity.
    pub fn check_feasible(&self, totals: &[u64]) -> Result<(), BalanceError> {
        for (r, &total) in totals.iter().enumerate().take(self.num_resources) {
            let capacity: u64 = (0..self.num_parts)
                .map(|p| self.caps[p * self.num_resources + r])
                .fold(0u64, |a, c| a.saturating_add(c));
            if capacity < total {
                return Err(BalanceError::Infeasible {
                    resource: r,
                    total,
                    capacity,
                });
            }
        }
        Ok(())
    }

    /// The tightest-fit epsilon: the relative headroom of the most
    /// constrained (part, resource) cell against an even split.
    ///
    /// For each resource `r` with total `T_r`, the even-split target is
    /// `T_r / k`; the headroom of the scarcest part is
    /// `min_p cap(p, r) / (T_r / k) − 1`. The result is the minimum over
    /// resources, clamped at 0 — the FPGA exemplar's rule that the scarcest
    /// resource sets the imbalance budget. Resources with zero total are
    /// skipped (they constrain nothing). Returns `0.0` when every resource
    /// total is zero.
    pub fn tightest_fit_epsilon(&self, totals: &[u64]) -> f64 {
        let mut eps = f64::INFINITY;
        for (r, &total) in totals.iter().enumerate().take(self.num_resources) {
            if total == 0 {
                continue;
            }
            let ave = total as f64 / self.num_parts as f64;
            let min_cap = (0..self.num_parts)
                .map(|p| self.caps[p * self.num_resources + r])
                .min()
                .unwrap_or(0);
            eps = eps.min((min_cap as f64 - ave) / ave);
        }
        if eps.is_finite() {
            eps.max(0.0)
        } else {
            0.0
        }
    }

    /// Converts to the engines' [`BalanceConstraint`]: the capacities become
    /// the per-part maxima, minima are zero (one-sided regime).
    pub fn to_balance(&self) -> BalanceConstraint {
        BalanceConstraint::explicit(
            self.num_parts,
            self.num_resources,
            vec![0; self.caps.len()],
            self.caps.clone(),
        )
        .expect("shape is consistent by construction")
    }
}

impl fmt::Display for PartCapacities {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in 0..self.num_parts {
            if p > 0 {
                f.write_str(";")?;
            }
            for r in 0..self.num_resources {
                if r > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{}", self.caps[p * self.num_resources + r])?;
            }
        }
        Ok(())
    }
}

impl FromStr for PartCapacities {
    type Err = ParseResourceError;

    /// Parses `"c00,c01;c10,c11;..."` — parts separated by `;`, resources
    /// by `,`. Every part must have the same arity.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseResourceError("empty capacity matrix".into()));
        }
        let mut caps = Vec::new();
        let mut num_resources = 0usize;
        let mut num_parts = 0usize;
        for row in s.split(';') {
            let v: ResourceVec = row.parse()?;
            if num_parts == 0 {
                num_resources = v.dims();
            } else if v.dims() != num_resources {
                return Err(ParseResourceError(format!(
                    "part {num_parts} has {} resources, expected {num_resources}",
                    v.dims()
                )));
            }
            caps.extend_from_slice(v.as_slice());
            num_parts += 1;
        }
        Ok(PartCapacities {
            num_parts,
            num_resources,
            caps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tolerance;

    #[test]
    fn resource_vec_roundtrip() {
        let v: ResourceVec = " 3, 0 ,12 ".parse().unwrap();
        assert_eq!(v.as_slice(), &[3, 0, 12]);
        assert_eq!(v.to_string(), "3,0,12");
        assert_eq!(v.to_string().parse::<ResourceVec>().unwrap(), v);
    }

    #[test]
    fn resource_vec_rejects_junk() {
        assert!("".parse::<ResourceVec>().is_err());
        assert!("1,,2".parse::<ResourceVec>().is_err());
        assert!("1,-2".parse::<ResourceVec>().is_err());
        assert!("a".parse::<ResourceVec>().is_err());
    }

    #[test]
    fn resource_vec_arithmetic() {
        let mut v = ResourceVec::zeros(2);
        v.add_assign(&[u64::MAX, 1]);
        v.add_assign(&[1, 1]);
        assert_eq!(v.as_slice(), &[u64::MAX, 2]); // saturating
        v.sub_assign(&[1, 5]);
        assert_eq!(v.as_slice(), &[u64::MAX - 1, 0]);
    }

    #[test]
    fn capacities_roundtrip() {
        let c: PartCapacities = "100,8;60,4;60,4".parse().unwrap();
        assert_eq!(c.num_parts(), 3);
        assert_eq!(c.num_resources(), 2);
        assert_eq!(c.cap(PartId(1), 1), 4);
        assert_eq!(c.part_row(PartId(0)), &[100, 8]);
        assert_eq!(c.to_string(), "100,8;60,4;60,4");
        assert_eq!(c.to_string().parse::<PartCapacities>().unwrap(), c);
    }

    #[test]
    fn capacities_ragged_rejected() {
        assert!("1,2;3".parse::<PartCapacities>().is_err());
    }

    #[test]
    fn uniform_replicates_rows() {
        let c = PartCapacities::uniform(3, &[7, 9]);
        assert_eq!(c.as_flat(), &[7, 9, 7, 9, 7, 9]);
    }

    #[test]
    fn explicit_shape_checked() {
        assert!(matches!(
            PartCapacities::explicit(2, 2, vec![1, 2, 3]),
            Err(BalanceError::ShapeMismatch {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn feasibility_component_wise() {
        let c: PartCapacities = "10,1;10,1".parse().unwrap();
        assert!(c.check_feasible(&[20, 2]).is_ok());
        let err = c.check_feasible(&[5, 3]).unwrap_err();
        assert!(matches!(
            err,
            BalanceError::Infeasible {
                resource: 1,
                total: 3,
                capacity: 2
            }
        ));
    }

    #[test]
    fn feasibility_saturates_aggregate() {
        let c = PartCapacities::uniform(3, &[u64::MAX]);
        assert!(c.check_feasible(&[u64::MAX]).is_ok());
    }

    #[test]
    fn tightest_fit_epsilon_scarcest_resource_wins() {
        // Resource 0: caps 60 each vs target 50 -> 20% headroom.
        // Resource 1: caps 5 each vs target 5 -> 0% headroom (tightest).
        let c: PartCapacities = "60,5;60,5".parse().unwrap();
        let eps = c.tightest_fit_epsilon(&[100, 10]);
        assert!(eps.abs() < 1e-12, "eps = {eps}");
        let loose: PartCapacities = "60,6;60,6".parse().unwrap();
        let eps = loose.tightest_fit_epsilon(&[100, 10]);
        assert!((eps - 0.2).abs() < 1e-12, "eps = {eps}");
    }

    #[test]
    fn tightest_fit_epsilon_clamped_and_degenerate() {
        // Over-subscribed resource would give negative headroom: clamp to 0.
        let c: PartCapacities = "4;4".parse().unwrap();
        assert_eq!(c.tightest_fit_epsilon(&[100]), 0.0);
        // All-zero totals constrain nothing.
        assert_eq!(c.tightest_fit_epsilon(&[0]), 0.0);
    }

    #[test]
    fn to_balance_is_one_sided() {
        let c: PartCapacities = "10,2;8,2".parse().unwrap();
        let b = c.to_balance();
        assert_eq!(b.num_parts(), 2);
        assert_eq!(b.num_resources(), 2);
        assert_eq!(b.max(PartId(0), 0), 10);
        assert_eq!(b.min(PartId(0), 0), 0);
        assert_eq!(b.max(PartId(1), 0), 8);
        // One-sided: any under-full assignment satisfies it.
        assert!(b.is_satisfied(&[0, 0, 8, 2]));
    }

    #[test]
    fn to_balance_matches_even_for_generous_caps() {
        // Sanity link to the two-sided constructor: identical maxima.
        let even = BalanceConstraint::even(2, &[100], Tolerance::Relative(0.1));
        let caps = PartCapacities::uniform(2, &[even.max(PartId(0), 0)]);
        assert_eq!(caps.to_balance().max(PartId(0), 0), even.max(PartId(0), 0));
    }
}
