//! End-to-end validation of partitioning solutions.

use std::fmt;

use crate::cut::recompute_value;
use crate::{
    BalanceConstraint, FixedVertices, Hypergraph, Objective, PartId, Partitioning, VertexId,
};

/// The result of [`validate_partitioning`]: every violated invariant, plus
/// the independently recomputed cut.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{
///     validate_partitioning, BalanceConstraint, FixedVertices, HypergraphBuilder,
///     PartId, Partitioning, Tolerance,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(1);
/// let v = b.add_vertex(1);
/// b.add_net(1, [u, v])?;
/// let hg = b.build()?;
/// let p = Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(1)])?;
/// let bc = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
/// let fx = FixedVertices::all_free(2);
/// let report = validate_partitioning(&hg, &p, &bc, &fx);
/// assert!(report.is_valid());
/// assert_eq!(report.recomputed_cut, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Vertices placed in a partition their fixity forbids.
    pub fixed_violations: Vec<VertexId>,
    /// `(part, resource)` pairs whose load exceeds the maximum.
    pub overfull: Vec<(PartId, usize)>,
    /// `(part, resource)` pairs whose load is below the minimum.
    pub underfull: Vec<(PartId, usize)>,
    /// `true` if the partitioning's incremental cut disagrees with a from-
    /// scratch recomputation (would indicate a bookkeeping bug).
    pub cut_mismatch: bool,
    /// The independently recomputed cut value.
    pub recomputed_cut: u64,
}

impl ValidationReport {
    /// Returns `true` if no invariant is violated.
    pub fn is_valid(&self) -> bool {
        self.fixed_violations.is_empty()
            && self.overfull.is_empty()
            && self.underfull.is_empty()
            && !self.cut_mismatch
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            return write!(f, "valid (cut = {})", self.recomputed_cut);
        }
        write!(
            f,
            "invalid: {} fixed violations, {} overfull, {} underfull, cut_mismatch={}",
            self.fixed_violations.len(),
            self.overfull.len(),
            self.underfull.len(),
            self.cut_mismatch
        )
    }
}

/// Checks a partitioning against balance and fixity constraints and
/// recomputes the cut from scratch.
///
/// This is the independent referee used by the test suites and experiment
/// harness: it shares no incremental bookkeeping with the partitioners.
pub fn validate_partitioning(
    hg: &Hypergraph,
    partitioning: &Partitioning,
    balance: &BalanceConstraint,
    fixed: &FixedVertices,
) -> ValidationReport {
    let mut report = ValidationReport::default();

    for v in hg.vertices() {
        if v.index() < fixed.len() && !fixed.fixity(v).allows(partitioning.part_of(v)) {
            report.fixed_violations.push(v);
        }
    }

    for p in 0..partitioning.num_parts() {
        let part = PartId::from_index(p);
        for r in 0..hg.num_resources().min(balance.num_resources()) {
            let load = partitioning.load(part, r);
            if load > balance.max(part, r) {
                report.overfull.push((part, r));
            }
            if load < balance.min(part, r) {
                report.underfull.push((part, r));
            }
        }
    }

    report.recomputed_cut = recompute_value(
        hg,
        partitioning.num_parts(),
        partitioning.as_slice(),
        Objective::Cut,
    );
    report.cut_mismatch = report.recomputed_cut != partitioning.cut_value(Objective::Cut);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fixity, HypergraphBuilder, Tolerance};

    fn setup() -> (Hypergraph, Partitioning) {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();
        let p = Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(0), PartId(1), PartId(1)])
            .unwrap();
        (hg, p)
    }

    #[test]
    fn valid_solution_reports_clean() {
        let (hg, p) = setup();
        let bc = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let fx = FixedVertices::all_free(4);
        let rep = validate_partitioning(&hg, &p, &bc, &fx);
        assert!(rep.is_valid());
        assert_eq!(rep.recomputed_cut, 0);
        assert_eq!(rep.to_string(), "valid (cut = 0)");
    }

    #[test]
    fn detects_fixed_violation() {
        let (hg, p) = setup();
        let bc = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.0));
        let mut fx = FixedVertices::all_free(4);
        fx.set(VertexId(0), Fixity::Fixed(PartId(1)));
        let rep = validate_partitioning(&hg, &p, &bc, &fx);
        assert_eq!(rep.fixed_violations, vec![VertexId(0)]);
        assert!(!rep.is_valid());
        assert!(rep.to_string().starts_with("invalid"));
    }

    #[test]
    fn detects_imbalance() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2).map(|_| b.add_vertex(5)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        let hg = b.build().unwrap();
        let p = Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(0)]).unwrap();
        let bc = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
        let fx = FixedVertices::all_free(2);
        let rep = validate_partitioning(&hg, &p, &bc, &fx);
        assert_eq!(rep.overfull, vec![(PartId(0), 0)]);
        assert_eq!(rep.underfull, vec![(PartId(1), 0)]);
    }
}
