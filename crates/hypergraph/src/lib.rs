//! Hypergraph data structures for VLSI partitioning with fixed vertices.
//!
//! This crate provides the substrate on which the reproduction of
//! *Hypergraph Partitioning with Fixed Vertices* (Alpert, Caldwell, Kahng,
//! Markov; DAC 1999 / IEEE TCAD 19(2)) is built:
//!
//! * [`Hypergraph`] — an immutable, CSR-packed hypergraph with per-vertex
//!   (possibly multi-resource) weights and per-net weights, built through
//!   [`HypergraphBuilder`].
//! * [`Fixity`] / fixed-vertex assignments — a vertex may be free, fixed in
//!   one partition, or fixed in a *set* of allowed partitions ("or"
//!   semantics, Section IV of the paper).
//! * [`BalanceConstraint`] — absolute or relative (percentage) balance
//!   semantics, per resource type (multi-balanced partitioning).
//! * [`Partitioning`] + [`CutState`] — a partition assignment with
//!   incrementally-maintained per-net pin distributions and cut objectives
//!   ([`Objective::Cut`], [`Objective::KMinus1`], [`Objective::Soed`]).
//! * I/O for the classic ACM/SIGDA `.net`/`.are` format and a
//!   bookshelf-style text format with `.fix` fixed-vertex files.
//!
//! # Example
//!
//! ```
//! use vlsi_hypergraph::{HypergraphBuilder, PartId, Partitioning, Objective};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let v0 = b.add_vertex(1);
//! let v1 = b.add_vertex(1);
//! let v2 = b.add_vertex(2);
//! b.add_net(1, [v0, v1])?;
//! b.add_net(1, [v1, v2])?;
//! let hg = b.build()?;
//!
//! let parts = vec![PartId(0), PartId(0), PartId(1)];
//! let p = Partitioning::from_parts(&hg, 2, parts)?;
//! assert_eq!(p.cut_value(Objective::Cut), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod builder;
mod components;
mod cut;
mod error;
mod fixed;
mod graph;
mod ids;
pub mod io;
mod partitioning;
pub mod resource;
pub mod stats;
mod subgraph;
mod validate;

pub use balance::{BalanceConstraint, BalanceError, Tolerance};
pub use builder::HypergraphBuilder;
pub use components::{connected_components, largest_component_size};
pub use cut::{CutState, Objective};
pub use error::{BuildError, PartitionInputError};
pub use fixed::{FixedVertices, Fixity, PartSet};
pub use graph::Hypergraph;
pub use ids::{NetId, PartId, VertexId};
pub use partitioning::Partitioning;
pub use resource::{ParseResourceError, PartCapacities, ResourceVec};
pub use subgraph::{induced_subgraph, Subgraph};
pub use validate::{validate_partitioning, ValidationReport};
