//! Strongly-typed index newtypes for vertices, nets and partitions.
//!
//! All three wrap `u32` and provide `index()` for slice access. Using
//! newtypes rather than raw `usize` statically prevents mixing a net index
//! into a vertex array (C-NEWTYPE).

use std::fmt;

/// Identifier of a vertex (a cell, pad or terminal) in a [`crate::Hypergraph`].
///
/// # Example
/// ```
/// use vlsi_hypergraph::VertexId;
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

/// Identifier of a net (hyperedge) in a [`crate::Hypergraph`].
///
/// # Example
/// ```
/// use vlsi_hypergraph::NetId;
/// assert_eq!(NetId(7).index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetId(pub u32);

/// Identifier of a partition (block) in a [`crate::Partitioning`].
///
/// Partition ids are dense: a k-way partitioning uses `PartId(0)..PartId(k)`.
///
/// # Example
/// ```
/// use vlsi_hypergraph::PartId;
/// assert_eq!(PartId(1).other_side(), PartId(0));
/// assert_eq!(PartId(0).other_side(), PartId(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartId(pub u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Returns the id as a `usize` suitable for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` exceeds `u32::MAX`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id overflows u32"))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            fn from(id: $ty) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(VertexId, "v");
impl_id!(NetId, "n");
impl_id!(PartId, "p");

impl PartId {
    /// In a bipartitioning, the opposite side of this partition.
    ///
    /// # Panics
    /// Panics if `self` is not `PartId(0)` or `PartId(1)`.
    #[inline]
    pub fn other_side(self) -> PartId {
        match self.0 {
            0 => PartId(1),
            1 => PartId(0),
            other => panic!("other_side called on non-bipartition id p{other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(VertexId::from_index(42).index(), 42);
        assert_eq!(NetId::from_index(0).index(), 0);
        assert_eq!(PartId::from_index(3).index(), 3);
    }

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(VertexId(1).to_string(), "v1");
        assert_eq!(NetId(2).to_string(), "n2");
        assert_eq!(PartId(0).to_string(), "p0");
    }

    #[test]
    fn other_side_flips() {
        assert_eq!(PartId(0).other_side(), PartId(1));
        assert_eq!(PartId(1).other_side(), PartId(0));
    }

    #[test]
    #[should_panic(expected = "non-bipartition")]
    fn other_side_panics_for_multiway() {
        let _ = PartId(2).other_side();
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        let mut v = vec![NetId(3), NetId(1), NetId(2)];
        v.sort();
        assert_eq!(v, vec![NetId(1), NetId(2), NetId(3)]);
    }

    #[test]
    fn usize_conversion() {
        let n: usize = VertexId(9).into();
        assert_eq!(n, 9);
    }
}
