//! Descriptive statistics of hypergraph instances — the quantities the
//! paper reports for its benchmarks (Table IV: cells, pads, nets, external
//! nets, `Max%`) plus degree/size distributions.

use crate::{FixedVertices, Hypergraph, NetId};

/// Summary statistics of a (possibly fixed-terminal) partitioning instance.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{stats::InstanceStats, FixedVertices, HypergraphBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(2);
/// let v = b.add_vertex(0); // a zero-area pad terminal
/// b.add_net(1, [u, v])?;
/// let hg = b.build()?;
/// let mut fx = FixedVertices::all_free(2);
/// fx.fix(v, vlsi_hypergraph::PartId(0));
/// let s = InstanceStats::compute(&hg, &fx);
/// assert_eq!(s.num_pads, 1);
/// assert_eq!(s.num_external_nets, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Number of movable (free) vertices — the paper's "cells".
    pub num_cells: usize,
    /// Number of fixed vertices — the paper's "pads"/terminals.
    pub num_pads: usize,
    /// Total number of nets.
    pub num_nets: usize,
    /// Nets incident to at least one fixed vertex — the paper's
    /// "external nets" (these correspond to propagated terminals).
    pub num_external_nets: usize,
    /// Total number of pins.
    pub num_pins: usize,
    /// Largest cell area as a percentage of total area (`Max%`).
    pub max_weight_percent: f64,
    /// Average pins per vertex.
    pub avg_pins_per_vertex: f64,
    /// Average pins per net.
    pub avg_pins_per_net: f64,
    /// Largest net size.
    pub max_net_size: usize,
    /// Largest vertex degree.
    pub max_vertex_degree: usize,
}

impl InstanceStats {
    /// Computes the statistics of `hg` under the fixity table `fixed`.
    pub fn compute(hg: &Hypergraph, fixed: &FixedVertices) -> Self {
        let num_pads = fixed.num_fixed();
        let num_external_nets = hg
            .nets()
            .filter(|&n| {
                hg.net_pins(n)
                    .iter()
                    .any(|&v| v.index() < fixed.len() && fixed.fixity(v).is_fixed())
            })
            .count();
        InstanceStats {
            num_vertices: hg.num_vertices(),
            num_cells: hg.num_vertices() - num_pads,
            num_pads,
            num_nets: hg.num_nets(),
            num_external_nets,
            num_pins: hg.num_pins(),
            max_weight_percent: hg.max_weight_percent(),
            avg_pins_per_vertex: hg.avg_pins_per_vertex(),
            avg_pins_per_net: hg.avg_pins_per_net(),
            max_net_size: hg.nets().map(|n| hg.net_size(n)).max().unwrap_or(0),
            max_vertex_degree: hg
                .vertices()
                .map(|v| hg.vertex_degree(v))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Histogram of net sizes: `histogram[s]` = number of nets with `s` pins
/// (sizes above `cap` are accumulated in the last bucket).
pub fn net_size_histogram(hg: &Hypergraph, cap: usize) -> Vec<usize> {
    let mut hist = vec![0usize; cap + 1];
    for n in hg.nets() {
        let s = hg.net_size(n).min(cap);
        hist[s] += 1;
    }
    hist
}

/// Histogram of vertex degrees with the same capping convention.
pub fn vertex_degree_histogram(hg: &Hypergraph, cap: usize) -> Vec<usize> {
    let mut hist = vec![0usize; cap + 1];
    for v in hg.vertices() {
        let d = hg.vertex_degree(v).min(cap);
        hist[d] += 1;
    }
    hist
}

/// Returns the ids of nets incident to at least one fixed vertex.
pub fn external_nets(hg: &Hypergraph, fixed: &FixedVertices) -> Vec<NetId> {
    hg.nets()
        .filter(|&n| {
            hg.net_pins(n)
                .iter()
                .any(|&v| v.index() < fixed.len() && fixed.fixity(v).is_fixed())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, PartId};

    fn instance() -> (Hypergraph, FixedVertices) {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..5)
            .map(|i| b.add_vertex(if i == 0 { 10 } else { 1 }))
            .collect();
        b.add_net(1, [v[0], v[1], v[2]]).unwrap();
        b.add_net(1, [v[3], v[4]]).unwrap();
        b.add_net(1, [v[1], v[4]]).unwrap();
        let hg = b.build().unwrap();
        let mut fx = FixedVertices::all_free(5);
        fx.fix(v[4], PartId(1));
        (hg, fx)
    }

    #[test]
    fn counts_cells_pads_external_nets() {
        let (hg, fx) = instance();
        let s = InstanceStats::compute(&hg, &fx);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_pads, 1);
        assert_eq!(s.num_cells, 4);
        assert_eq!(s.num_external_nets, 2);
        assert_eq!(s.max_net_size, 3);
        assert!((s.max_weight_percent - 100.0 * 10.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn histograms() {
        let (hg, _) = instance();
        let nh = net_size_histogram(&hg, 4);
        assert_eq!(nh[2], 2);
        assert_eq!(nh[3], 1);
        let vh = vertex_degree_histogram(&hg, 4);
        assert_eq!(vh[1], 3); // v0, v2, v3
        assert_eq!(vh[2], 2); // v1, v4
    }

    #[test]
    fn histogram_capping() {
        let (hg, _) = instance();
        let nh = net_size_histogram(&hg, 2);
        assert_eq!(nh[2], 3); // the 3-pin net is folded into the cap bucket
    }

    #[test]
    fn external_nets_listed() {
        let (hg, fx) = instance();
        let ext = external_nets(&hg, &fx);
        assert_eq!(ext, vec![NetId(1), NetId(2)]);
    }
}
