//! Balance constraints with absolute or relative (percentage) semantics,
//! per resource type (Section IV of the paper).

use std::error::Error;
use std::fmt;

use crate::PartId;

/// How far a partition's load may deviate from its even-split target.
///
/// # Example
/// ```
/// use vlsi_hypergraph::Tolerance;
/// let t = Tolerance::Relative(0.02); // the paper's 2% balance tolerance
/// assert_eq!(t.max_load(1000, 2), 510);
/// assert_eq!(Tolerance::Absolute(7).max_load(1000, 2), 507);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Deviation as a fraction of the even-split target, e.g. `0.02` allows
    /// each side of a bisection to hold up to `1.02 * total/2`.
    Relative(f64),
    /// Deviation as an absolute amount of weight.
    Absolute(u64),
}

impl Tolerance {
    /// Maximum allowed load of one of `num_parts` blocks for the given total.
    ///
    /// # Panics
    /// Panics if `num_parts == 0` or a relative tolerance is negative/NaN.
    pub fn max_load(self, total: u64, num_parts: usize) -> u64 {
        assert!(num_parts > 0, "need at least one partition");
        let target = total as f64 / num_parts as f64;
        match self {
            Tolerance::Relative(eps) => {
                assert!(eps >= 0.0, "relative tolerance must be non-negative");
                // Clamped to at least ceil(target): flooring an epsilon
                // smaller than the rounding gap would give k parts whose
                // maxima sum below the total — infeasible even at eps = 0
                // (e.g. total 10, k = 3: floor(3.33) = 3, Σmax = 9 < 10).
                // ceil(target) per part always sums to ≥ total.
                ((target * (1.0 + eps)).floor() as u64).max(target.ceil() as u64)
            }
            Tolerance::Absolute(slack) => (target.ceil() as u64).saturating_add(slack),
        }
    }

    /// Minimum allowed load of one of `num_parts` blocks for the given total.
    ///
    /// # Panics
    /// Panics if `num_parts == 0` or a relative tolerance is negative/NaN.
    pub fn min_load(self, total: u64, num_parts: usize) -> u64 {
        assert!(num_parts > 0, "need at least one partition");
        let target = total as f64 / num_parts as f64;
        match self {
            Tolerance::Relative(eps) => {
                assert!(eps >= 0.0, "relative tolerance must be non-negative");
                // Clamped to at most floor(target), mirroring `max_load`:
                // ceiling a tight epsilon would give k minima summing above
                // the total (total 10, k = 3: ceil(3.33) = 4, Σmin = 12).
                ((target * (1.0 - eps)).ceil().max(0.0) as u64).min(target.floor() as u64)
            }
            Tolerance::Absolute(slack) => (target.floor() as u64).saturating_sub(slack),
        }
    }
}

/// Error returned when a balance constraint is infeasible or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BalanceError {
    /// The sum of the per-part maxima cannot hold the total weight.
    Infeasible {
        /// Resource type index that cannot be packed.
        resource: usize,
        /// Total weight of that resource.
        total: u64,
        /// Sum of per-part maxima for that resource.
        capacity: u64,
    },
    /// Capacity vectors had inconsistent lengths.
    ShapeMismatch {
        /// Expected `num_parts * num_resources` entries.
        expected: usize,
        /// Observed length.
        found: usize,
    },
}

impl fmt::Display for BalanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BalanceError::Infeasible {
                resource,
                total,
                capacity,
            } => write!(
                f,
                "resource {resource}: total weight {total} exceeds aggregate capacity {capacity}"
            ),
            BalanceError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "capacity vector has {found} entries, expected {expected}"
                )
            }
        }
    }
}

impl Error for BalanceError {}

/// Per-partition, per-resource load bounds.
///
/// Stored as flat `num_parts × num_resources` min/max matrices. Zero-weight
/// vertices (the paper's zero-area pad terminals) never affect feasibility.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{BalanceConstraint, PartId, Tolerance};
/// // The paper's setup: bipartition, 2% tolerance.
/// let bc = BalanceConstraint::bisection(1000, Tolerance::Relative(0.02));
/// assert_eq!(bc.max(PartId(0), 0), 510);
/// assert_eq!(bc.min(PartId(0), 0), 490);
/// assert!(bc.fits(PartId(1), &[505]));
/// assert!(!bc.fits(PartId(1), &[511]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceConstraint {
    num_parts: usize,
    num_resources: usize,
    min: Vec<u64>,
    max: Vec<u64>,
}

impl BalanceConstraint {
    /// Even split of a single scalar resource into two blocks with the given
    /// tolerance — the configuration used throughout the paper.
    pub fn bisection(total: u64, tolerance: Tolerance) -> Self {
        Self::even(2, &[total], tolerance)
    }

    /// Even split of each resource into `num_parts` blocks with the given
    /// tolerance.
    ///
    /// # Panics
    /// Panics if `num_parts == 0` or `totals` is empty.
    pub fn even(num_parts: usize, totals: &[u64], tolerance: Tolerance) -> Self {
        assert!(num_parts > 0, "need at least one partition");
        assert!(!totals.is_empty(), "need at least one resource");
        let num_resources = totals.len();
        let mut min = Vec::with_capacity(num_parts * num_resources);
        let mut max = Vec::with_capacity(num_parts * num_resources);
        for _ in 0..num_parts {
            for &total in totals {
                min.push(tolerance.min_load(total, num_parts));
                max.push(tolerance.max_load(total, num_parts));
            }
        }
        BalanceConstraint {
            num_parts,
            num_resources,
            min,
            max,
        }
    }

    /// Fully explicit capacities: `min`/`max` are `num_parts × num_resources`
    /// row-major matrices (Section IV: "a corresponding set of k capacities
    /// and tolerances must be specified for each partition").
    ///
    /// # Errors
    /// Returns [`BalanceError::ShapeMismatch`] if the vectors have the wrong
    /// length.
    pub fn explicit(
        num_parts: usize,
        num_resources: usize,
        min: Vec<u64>,
        max: Vec<u64>,
    ) -> Result<Self, BalanceError> {
        let expected = num_parts * num_resources;
        if min.len() != expected {
            return Err(BalanceError::ShapeMismatch {
                expected,
                found: min.len(),
            });
        }
        if max.len() != expected {
            return Err(BalanceError::ShapeMismatch {
                expected,
                found: max.len(),
            });
        }
        Ok(BalanceConstraint {
            num_parts,
            num_resources,
            min,
            max,
        })
    }

    /// Number of partitions.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of resource types.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Maximum load of `part` for `resource`.
    ///
    /// # Panics
    /// Panics if `part` or `resource` is out of range.
    #[inline]
    pub fn max(&self, part: PartId, resource: usize) -> u64 {
        self.max[part.index() * self.num_resources + resource]
    }

    /// Minimum load of `part` for `resource`.
    ///
    /// # Panics
    /// Panics if `part` or `resource` is out of range.
    #[inline]
    pub fn min(&self, part: PartId, resource: usize) -> u64 {
        self.min[part.index() * self.num_resources + resource]
    }

    /// Returns `true` if the per-resource `loads` fit within `part`'s maxima.
    ///
    /// # Panics
    /// Panics if `loads.len() != num_resources()`.
    #[inline]
    pub fn fits(&self, part: PartId, loads: &[u64]) -> bool {
        assert_eq!(loads.len(), self.num_resources);
        let base = part.index() * self.num_resources;
        loads
            .iter()
            .enumerate()
            .all(|(r, &l)| l <= self.max[base + r])
    }

    /// Returns `true` if moving a vertex with the given `weights` from
    /// `from` to `to` keeps `to` under its maxima, given the current flat
    /// `loads` matrix (`num_parts × num_resources`).
    ///
    /// Only the destination maxima are enforced during refinement (the
    /// classic FM relaxation); terminal minima are checked at acceptance
    /// time with [`BalanceConstraint::is_satisfied`].
    ///
    /// # Panics
    /// Panics if shapes disagree.
    #[inline]
    pub fn move_allowed(&self, loads: &[u64], from: PartId, to: PartId, weights: &[u64]) -> bool {
        debug_assert_eq!(loads.len(), self.num_parts * self.num_resources);
        debug_assert_eq!(weights.len(), self.num_resources);
        if from == to {
            return true;
        }
        let to_base = to.index() * self.num_resources;
        weights
            .iter()
            .enumerate()
            .all(|(r, &w)| loads[to_base + r] + w <= self.max[to_base + r])
    }

    /// Like [`BalanceConstraint::move_allowed`] but additionally requires the
    /// source partition to stay at or above its minima — the discipline used
    /// by the FM engines so that every intermediate solution in a pass is
    /// legal.
    ///
    /// # Panics
    /// Panics (debug) if shapes disagree.
    #[inline]
    pub fn move_allowed_strict(
        &self,
        loads: &[u64],
        from: PartId,
        to: PartId,
        weights: &[u64],
    ) -> bool {
        debug_assert_eq!(loads.len(), self.num_parts * self.num_resources);
        debug_assert_eq!(weights.len(), self.num_resources);
        if from == to {
            return true;
        }
        let to_base = to.index() * self.num_resources;
        let from_base = from.index() * self.num_resources;
        weights.iter().enumerate().all(|(r, &w)| {
            loads[to_base + r] + w <= self.max[to_base + r]
                && loads[from_base + r] >= self.min[from_base + r].saturating_add(w)
        })
    }

    /// Returns `true` if every partition's load lies within `[min, max]` for
    /// every resource. `loads` is the flat `num_parts × num_resources`
    /// matrix.
    ///
    /// # Panics
    /// Panics if `loads` has the wrong length.
    pub fn is_satisfied(&self, loads: &[u64]) -> bool {
        assert_eq!(loads.len(), self.num_parts * self.num_resources);
        loads
            .iter()
            .zip(self.min.iter().zip(self.max.iter()))
            .all(|(&l, (&lo, &hi))| lo <= l && l <= hi)
    }

    /// Checks that the constraint can hold the given per-resource totals.
    ///
    /// # Errors
    /// Returns [`BalanceError::Infeasible`] naming the first resource whose
    /// total exceeds the aggregate capacity.
    pub fn check_feasible(&self, totals: &[u64]) -> Result<(), BalanceError> {
        for (r, &total) in totals.iter().enumerate().take(self.num_resources) {
            let capacity: u64 = (0..self.num_parts)
                .map(|p| self.max[p * self.num_resources + r])
                .sum();
            if capacity < total {
                return Err(BalanceError::Infeasible {
                    resource: r,
                    total,
                    capacity,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_tolerance_bounds() {
        let bc = BalanceConstraint::bisection(1000, Tolerance::Relative(0.02));
        assert_eq!(bc.max(PartId(0), 0), 510);
        assert_eq!(bc.min(PartId(1), 0), 490);
    }

    #[test]
    fn absolute_tolerance_bounds() {
        let bc = BalanceConstraint::bisection(999, Tolerance::Absolute(10));
        assert_eq!(bc.max(PartId(0), 0), 510); // ceil(499.5) + 10
        assert_eq!(bc.min(PartId(0), 0), 489); // floor(499.5) - 10
    }

    #[test]
    fn zero_tolerance_exact_bisection() {
        let bc = BalanceConstraint::bisection(10, Tolerance::Relative(0.0));
        assert_eq!(bc.max(PartId(0), 0), 5);
        assert_eq!(bc.min(PartId(0), 0), 5);
        assert!(bc.is_satisfied(&[5, 5]));
        assert!(!bc.is_satisfied(&[4, 6]));
    }

    #[test]
    fn move_allowed_checks_destination_only() {
        let bc = BalanceConstraint::bisection(100, Tolerance::Relative(0.1));
        // loads: [54, 46]; max is 55 each
        assert!(bc.move_allowed(&[54, 46], PartId(0), PartId(1), &[9]));
        assert!(!bc.move_allowed(&[46, 54], PartId(0), PartId(1), &[2]));
        assert!(bc.move_allowed(&[60, 40], PartId(0), PartId(0), &[99]));
    }

    #[test]
    fn move_allowed_strict_checks_both_sides() {
        let bc = BalanceConstraint::bisection(100, Tolerance::Relative(0.1));
        // loads [50, 50], min 45, max 55: a weight-6 move empties the source
        // below min even though the destination has room.
        assert!(!bc.move_allowed_strict(&[50, 50], PartId(0), PartId(1), &[6]));
        assert!(bc.move_allowed_strict(&[50, 50], PartId(0), PartId(1), &[5]));
        assert!(bc.move_allowed_strict(&[50, 50], PartId(0), PartId(0), &[99]));
    }

    #[test]
    fn multi_resource_even_split() {
        let bc = BalanceConstraint::even(4, &[100, 8], Tolerance::Relative(0.0));
        assert_eq!(bc.max(PartId(3), 0), 25);
        assert_eq!(bc.max(PartId(3), 1), 2);
        assert!(bc.fits(PartId(0), &[25, 2]));
        assert!(!bc.fits(PartId(0), &[25, 3]));
    }

    #[test]
    fn explicit_shape_checked() {
        let err = BalanceConstraint::explicit(2, 1, vec![0], vec![10, 10]).unwrap_err();
        assert!(matches!(err, BalanceError::ShapeMismatch { .. }));
        let ok = BalanceConstraint::explicit(2, 1, vec![0, 0], vec![10, 10]).unwrap();
        assert_eq!(ok.num_parts(), 2);
    }

    #[test]
    fn feasibility_check() {
        let bc = BalanceConstraint::explicit(2, 1, vec![0, 0], vec![10, 10]).unwrap();
        assert!(bc.check_feasible(&[20]).is_ok());
        let err = bc.check_feasible(&[21]).unwrap_err();
        assert!(matches!(
            err,
            BalanceError::Infeasible {
                total: 21,
                capacity: 20,
                ..
            }
        ));
    }

    #[test]
    fn even_split_feasible_at_zero_tolerance_small_k() {
        // Regression: floor/ceil rounding at small k and tiny totals used
        // to produce Σmax < total (and Σmin > total) even at eps = 0,
        // rejecting every assignment. The clamp guarantees
        // Σmin ≤ total ≤ Σmax for every (total, k, eps).
        for k in 2..=8usize {
            for total in 1..=64u64 {
                for eps in [0.0, 0.001, 0.01, 0.02, 0.1] {
                    let bc = BalanceConstraint::even(k, &[total], Tolerance::Relative(eps));
                    let sum_max: u64 = (0..k).map(|p| bc.max(PartId(p as u32), 0)).sum();
                    let sum_min: u64 = (0..k).map(|p| bc.min(PartId(p as u32), 0)).sum();
                    assert!(
                        sum_max >= total,
                        "k={k} total={total} eps={eps}: Σmax {sum_max} < total"
                    );
                    assert!(
                        sum_min <= total,
                        "k={k} total={total} eps={eps}: Σmin {sum_min} > total"
                    );
                    assert!(
                        bc.min(PartId(0), 0) <= bc.max(PartId(0), 0),
                        "k={k} total={total} eps={eps}: min > max"
                    );
                    assert!(bc.check_feasible(&[total]).is_ok());
                }
            }
        }
    }

    #[test]
    fn even_split_admits_a_greedy_assignment_at_zero_tolerance() {
        // Constructive check: unit weights distributed round-robin satisfy
        // the zero-tolerance constraint for every k — i.e. the bounds
        // describe a non-empty solution set, not just a feasible sum.
        for k in 2..=8usize {
            for total in k as u64..=40 {
                let bc = BalanceConstraint::even(k, &[total], Tolerance::Relative(0.0));
                let mut loads = vec![0u64; k];
                for i in 0..total {
                    loads[(i % k as u64) as usize] += 1;
                }
                assert!(
                    bc.is_satisfied(&loads),
                    "k={k} total={total}: round-robin {loads:?} rejected \
                     (min {}..max {})",
                    bc.min(PartId(0), 0),
                    bc.max(PartId(0), 0)
                );
            }
        }
    }

    #[test]
    fn clamp_inactive_when_epsilon_has_room() {
        // The clamp only rescues configurations that were infeasible; with
        // enough epsilon room the historical floor/ceil values are kept
        // (pinned so dims=1 outputs cannot drift).
        let bc = BalanceConstraint::even(2, &[1000], Tolerance::Relative(0.02));
        assert_eq!(bc.max(PartId(0), 0), 510);
        assert_eq!(bc.min(PartId(0), 0), 490);
        let bc = BalanceConstraint::even(4, &[100, 8], Tolerance::Relative(0.0));
        assert_eq!(bc.max(PartId(3), 0), 25);
        assert_eq!(bc.max(PartId(3), 1), 2);
    }

    #[test]
    fn tolerance_never_negative_min() {
        assert_eq!(Tolerance::Relative(2.0).min_load(10, 2), 0);
        assert_eq!(Tolerance::Absolute(100).min_load(10, 2), 0);
    }
}
