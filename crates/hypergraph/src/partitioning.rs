//! A complete partition assignment with loads and cut bookkeeping.

use crate::cut::CutState;
use crate::error::PartitionInputError;
use crate::fixed::FixedVertices;
use crate::{Hypergraph, Objective, PartId, PartSet, VertexId};

/// A k-way partition assignment together with incrementally-maintained
/// per-partition resource loads and the per-net pin distribution
/// ([`CutState`]).
///
/// `Partitioning` does not borrow its hypergraph; every mutating method
/// takes `&Hypergraph` so the same assignment can outlive intermediate
/// coarsened graphs in a multilevel flow.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{HypergraphBuilder, PartId, Partitioning, Objective};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(3);
/// let v = b.add_vertex(5);
/// b.add_net(1, [u, v])?;
/// let hg = b.build()?;
///
/// let mut p = Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(1)])?;
/// assert_eq!(p.cut_value(Objective::Cut), 1);
/// assert_eq!(p.load(PartId(1), 0), 5);
/// p.move_vertex(&hg, v, PartId(0));
/// assert_eq!(p.cut_value(Objective::Cut), 0);
/// assert_eq!(p.load(PartId(0), 0), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    num_parts: usize,
    parts: Vec<PartId>,
    /// Flat `num_parts × num_resources` load matrix.
    loads: Vec<u64>,
    num_resources: usize,
    cut: CutState,
}

impl Partitioning {
    /// Builds a partitioning from an explicit assignment vector.
    ///
    /// # Errors
    /// * [`PartitionInputError::TooManyParts`] if `num_parts > 64`.
    /// * [`PartitionInputError::LengthMismatch`] if the vector length differs
    ///   from the vertex count.
    /// * [`PartitionInputError::PartOutOfRange`] if an entry is `>= num_parts`.
    pub fn from_parts(
        hg: &Hypergraph,
        num_parts: usize,
        parts: Vec<PartId>,
    ) -> Result<Self, PartitionInputError> {
        if num_parts > PartSet::MAX_PARTS {
            return Err(PartitionInputError::TooManyParts { num_parts });
        }
        if parts.len() != hg.num_vertices() {
            return Err(PartitionInputError::LengthMismatch {
                num_vertices: hg.num_vertices(),
                assignment_len: parts.len(),
            });
        }
        let num_resources = hg.num_resources();
        let mut loads = vec![0u64; num_parts * num_resources];
        for (i, &p) in parts.iter().enumerate() {
            if p.index() >= num_parts {
                return Err(PartitionInputError::PartOutOfRange {
                    vertex: VertexId::from_index(i),
                    part: p,
                    num_parts,
                });
            }
            let base = p.index() * num_resources;
            let ws = hg.vertex_weights(VertexId::from_index(i));
            for (r, &w) in ws.iter().enumerate() {
                loads[base + r] += w;
            }
        }
        let cut = CutState::new(hg, num_parts, &parts);
        Ok(Partitioning {
            num_parts,
            parts,
            loads,
            num_resources,
            cut,
        })
    }

    /// Like [`Partitioning::from_parts`] but additionally verifies the
    /// assignment against a fixed-vertex table.
    ///
    /// # Errors
    /// All of [`Partitioning::from_parts`]'s errors, plus
    /// [`PartitionInputError::FixedViolation`] when a fixed vertex sits in a
    /// partition its fixity forbids.
    pub fn from_parts_fixed(
        hg: &Hypergraph,
        num_parts: usize,
        parts: Vec<PartId>,
        fixed: &FixedVertices,
    ) -> Result<Self, PartitionInputError> {
        for (i, &p) in parts.iter().enumerate() {
            let v = VertexId::from_index(i);
            if i < fixed.len() && !fixed.fixity(v).allows(p) {
                return Err(PartitionInputError::FixedViolation { vertex: v, part: p });
            }
        }
        Self::from_parts(hg, num_parts, parts)
    }

    /// Number of partitions.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Current partition of `vertex`.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn part_of(&self, vertex: VertexId) -> PartId {
        self.parts[vertex.index()]
    }

    /// The full assignment slice (one `PartId` per vertex).
    #[inline]
    pub fn as_slice(&self) -> &[PartId] {
        &self.parts
    }

    /// Consumes the partitioning, returning the assignment vector.
    pub fn into_parts(self) -> Vec<PartId> {
        self.parts
    }

    /// Load of `part` for `resource`.
    ///
    /// # Panics
    /// Panics if `part` or `resource` is out of range.
    #[inline]
    pub fn load(&self, part: PartId, resource: usize) -> u64 {
        self.loads[part.index() * self.num_resources + resource]
    }

    /// The flat `num_parts × num_resources` load matrix.
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Access to the underlying [`CutState`].
    #[inline]
    pub fn cut_state(&self) -> &CutState {
        &self.cut
    }

    /// Current value of the given objective.
    #[inline]
    pub fn cut_value(&self, objective: Objective) -> u64 {
        self.cut.value(objective)
    }

    /// Moves `vertex` to partition `to`, updating loads and cut state.
    /// Returns the partition the vertex came from. A no-op if already there.
    ///
    /// # Panics
    /// Panics if `vertex` or `to` is out of range.
    pub fn move_vertex(&mut self, hg: &Hypergraph, vertex: VertexId, to: PartId) -> PartId {
        assert!(to.index() < self.num_parts, "part id out of range");
        let from = self.parts[vertex.index()];
        if from == to {
            return from;
        }
        let ws = hg.vertex_weights(vertex);
        let from_base = from.index() * self.num_resources;
        let to_base = to.index() * self.num_resources;
        for (r, &w) in ws.iter().enumerate() {
            self.loads[from_base + r] -= w;
            self.loads[to_base + r] += w;
        }
        self.cut.move_vertex(hg, vertex, from, to);
        self.parts[vertex.index()] = to;
        from
    }

    /// Number of vertices assigned to `part`.
    pub fn part_size(&self, part: PartId) -> usize {
        self.parts.iter().filter(|&&p| p == part).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fixity, HypergraphBuilder};

    fn square() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i + 1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[1], v[2]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        b.add_net(1, [v[3], v[0]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn loads_tracked() {
        let hg = square();
        let p = Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(0), PartId(1), PartId(1)])
            .unwrap();
        assert_eq!(p.load(PartId(0), 0), 3);
        assert_eq!(p.load(PartId(1), 0), 7);
        assert_eq!(p.cut_value(Objective::Cut), 2);
        assert_eq!(p.part_size(PartId(0)), 2);
    }

    #[test]
    fn move_updates_everything() {
        let hg = square();
        let mut p =
            Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(0), PartId(1), PartId(1)])
                .unwrap();
        let from = p.move_vertex(&hg, VertexId(1), PartId(1));
        assert_eq!(from, PartId(0));
        assert_eq!(p.load(PartId(0), 0), 1);
        assert_eq!(p.load(PartId(1), 0), 9);
        assert_eq!(p.part_of(VertexId(1)), PartId(1));
        assert_eq!(p.cut_value(Objective::Cut), 2);
    }

    #[test]
    fn length_mismatch_rejected() {
        let hg = square();
        let err = Partitioning::from_parts(&hg, 2, vec![PartId(0)]).unwrap_err();
        assert!(matches!(err, PartitionInputError::LengthMismatch { .. }));
    }

    #[test]
    fn out_of_range_part_rejected() {
        let hg = square();
        let err =
            Partitioning::from_parts(&hg, 2, vec![PartId(0), PartId(2), PartId(0), PartId(0)])
                .unwrap_err();
        assert!(matches!(err, PartitionInputError::PartOutOfRange { .. }));
    }

    #[test]
    fn too_many_parts_rejected() {
        let hg = square();
        let err = Partitioning::from_parts(&hg, 65, vec![PartId(0); 4]).unwrap_err();
        assert!(matches!(err, PartitionInputError::TooManyParts { .. }));
    }

    #[test]
    fn fixed_violation_rejected() {
        let hg = square();
        let mut fx = FixedVertices::all_free(4);
        fx.set(VertexId(2), Fixity::Fixed(PartId(0)));
        let err = Partitioning::from_parts_fixed(
            &hg,
            2,
            vec![PartId(0), PartId(0), PartId(1), PartId(1)],
            &fx,
        )
        .unwrap_err();
        assert!(matches!(err, PartitionInputError::FixedViolation { .. }));
    }

    #[test]
    fn fixed_ok_accepted() {
        let hg = square();
        let mut fx = FixedVertices::all_free(4);
        fx.set(VertexId(2), Fixity::Fixed(PartId(1)));
        let p = Partitioning::from_parts_fixed(
            &hg,
            2,
            vec![PartId(0), PartId(0), PartId(1), PartId(1)],
            &fx,
        )
        .unwrap();
        assert_eq!(p.part_of(VertexId(2)), PartId(1));
    }

    #[test]
    fn into_parts_roundtrip() {
        let hg = square();
        let parts = vec![PartId(1), PartId(0), PartId(1), PartId(0)];
        let p = Partitioning::from_parts(&hg, 2, parts.clone()).unwrap();
        assert_eq!(p.into_parts(), parts);
    }
}
