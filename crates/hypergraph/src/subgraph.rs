//! Induced sub-hypergraph extraction.
//!
//! Used by recursive bisection (k-way partitioning) and by the top-down
//! placer, which repeatedly restricts the netlist to the cells of one block.

use crate::{FixedVertices, Fixity, Hypergraph, HypergraphBuilder, VertexId};

/// An induced sub-hypergraph together with the vertex correspondence.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted hypergraph.
    pub hg: Hypergraph,
    /// `to_parent[sub_vertex] = parent_vertex`.
    pub to_parent: Vec<VertexId>,
    /// `to_sub[parent_vertex] = Some(sub_vertex)` for selected vertices.
    pub to_sub: Vec<Option<VertexId>>,
}

impl Subgraph {
    /// Restricts a parent fixity table to the subgraph's vertices.
    pub fn restrict_fixed(&self, fixed: &FixedVertices) -> FixedVertices {
        FixedVertices::from_fixities(
            self.to_parent
                .iter()
                .map(|&p| {
                    if p.index() < fixed.len() {
                        fixed.fixity(p)
                    } else {
                        Fixity::Free
                    }
                })
                .collect(),
        )
    }
}

/// Extracts the sub-hypergraph induced by the vertices for which `select`
/// returns `true`. Nets are restricted to their selected pins; restricted
/// nets with fewer than `min_pins` pins are dropped (use 2 to discard nets
/// that can never be cut, 1 to keep all connectivity).
///
/// # Panics
/// Panics if `min_pins == 0`.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{induced_subgraph, HypergraphBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
/// b.add_net(1, [v[0], v[1], v[2]])?;
/// b.add_net(1, [v[2], v[3]])?;
/// let hg = b.build()?;
/// let sub = induced_subgraph(&hg, 2, |u| u.index() < 3);
/// assert_eq!(sub.hg.num_vertices(), 3);
/// assert_eq!(sub.hg.num_nets(), 1); // the 2-pin net lost a pin
/// # Ok(())
/// # }
/// ```
pub fn induced_subgraph<F: FnMut(VertexId) -> bool>(
    hg: &Hypergraph,
    min_pins: usize,
    mut select: F,
) -> Subgraph {
    assert!(min_pins >= 1, "min_pins must be at least 1");
    let mut to_sub = vec![None; hg.num_vertices()];
    let mut to_parent = Vec::new();
    let mut builder = HypergraphBuilder::with_resources(hg.num_resources());
    for v in hg.vertices() {
        if select(v) {
            let sv = builder
                .add_vertex_multi(hg.vertex_weights(v))
                .expect("arity matches parent");
            if let Some(name) = hg.vertex_name(v) {
                builder.set_vertex_name(sv, name);
            }
            to_sub[v.index()] = Some(sv);
            to_parent.push(v);
        }
    }
    let mut pins = Vec::new();
    for n in hg.nets() {
        pins.clear();
        pins.extend(hg.net_pins(n).iter().filter_map(|&p| to_sub[p.index()]));
        if pins.len() >= min_pins {
            builder
                .add_net(hg.net_weight(n), pins.iter().copied())
                .expect("pins are valid sub vertices");
        }
    }
    Subgraph {
        hg: builder.build().expect("valid subgraph"),
        to_parent,
        to_sub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetId, PartId};

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..5).map(|i| b.add_vertex(i as u64 + 1)).collect();
        b.add_net(2, [v[0], v[1], v[2]]).unwrap();
        b.add_net(1, [v[2], v[3]]).unwrap();
        b.add_net(1, [v[3], v[4]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mapping_is_consistent() {
        let hg = sample();
        let sub = induced_subgraph(&hg, 2, |v| v.0 % 2 == 0); // v0, v2, v4
        assert_eq!(sub.hg.num_vertices(), 3);
        for (sv, &pv) in sub.to_parent.iter().enumerate() {
            assert_eq!(sub.to_sub[pv.index()], Some(VertexId(sv as u32)));
            assert_eq!(
                sub.hg.vertex_weight(VertexId(sv as u32)),
                hg.vertex_weight(pv)
            );
        }
    }

    #[test]
    fn nets_restricted_and_filtered() {
        let hg = sample();
        let sub = induced_subgraph(&hg, 2, |v| v.0 <= 2);
        // net0 keeps 3 pins, net1 drops to 1 pin (filtered), net2 to 0.
        assert_eq!(sub.hg.num_nets(), 1);
        assert_eq!(sub.hg.net_size(NetId(0)), 3);
        assert_eq!(sub.hg.net_weight(NetId(0)), 2);
    }

    #[test]
    fn min_pins_one_keeps_singletons() {
        let hg = sample();
        let sub = induced_subgraph(&hg, 1, |v| v.0 <= 2);
        assert_eq!(sub.hg.num_nets(), 2);
    }

    #[test]
    fn fixity_restriction() {
        let hg = sample();
        let mut fx = FixedVertices::all_free(5);
        fx.fix(VertexId(2), PartId(1));
        let sub = induced_subgraph(&hg, 2, |v| v.0 >= 2);
        let sub_fx = sub.restrict_fixed(&fx);
        assert_eq!(sub_fx.num_fixed(), 1);
        let sv = sub.to_sub[2].unwrap();
        assert!(sub_fx.fixity(sv).is_fixed());
    }

    #[test]
    fn empty_selection() {
        let hg = sample();
        let sub = induced_subgraph(&hg, 2, |_| false);
        assert_eq!(sub.hg.num_vertices(), 0);
        assert_eq!(sub.hg.num_nets(), 0);
    }
}
