//! Error types for hypergraph construction and partition input validation.

use std::error::Error;
use std::fmt;

use crate::{NetId, PartId, VertexId};

/// Error produced while building a [`crate::Hypergraph`] through
/// [`crate::HypergraphBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A net referenced a vertex id that was never added.
    UnknownVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices known to the builder at the time.
        num_vertices: usize,
    },
    /// A net listed the same vertex more than once.
    DuplicatePin {
        /// The net being added (index it would have received).
        net: NetId,
        /// The repeated vertex.
        vertex: VertexId,
    },
    /// A net had fewer than one pin.
    EmptyNet {
        /// The net being added.
        net: NetId,
    },
    /// Vertex weight vectors disagree on the number of resource types.
    ResourceArity {
        /// The vertex whose weight vector had the wrong length.
        vertex: VertexId,
        /// Expected number of resources.
        expected: usize,
        /// Observed number of resources.
        found: usize,
    },
    /// A CSR arena outgrew the `u32` offset range the compact layout uses
    /// (at most `u32::MAX` pins, or 4 GiB of name bytes, per graph).
    ArenaOverflow {
        /// Which arena overflowed: `"pins"` or `"names"`.
        arena: &'static str,
        /// The arena length that was requested.
        requested: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownVertex {
                vertex,
                num_vertices,
            } => write!(
                f,
                "net references unknown vertex {vertex} (only {num_vertices} vertices exist)"
            ),
            BuildError::DuplicatePin { net, vertex } => {
                write!(f, "net {net} lists vertex {vertex} more than once")
            }
            BuildError::EmptyNet { net } => write!(f, "net {net} has no pins"),
            BuildError::ResourceArity {
                vertex,
                expected,
                found,
            } => write!(
                f,
                "vertex {vertex} supplies {found} resource weights, expected {expected}"
            ),
            BuildError::ArenaOverflow { arena, requested } => write!(
                f,
                "{arena} arena needs {requested} bytes-or-entries, exceeding the u32 offset range"
            ),
        }
    }
}

impl Error for BuildError {}

/// Error produced when a partition assignment is inconsistent with its
/// hypergraph (wrong length, out-of-range part, fixed-vertex violation).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionInputError {
    /// The assignment vector length differs from the vertex count.
    LengthMismatch {
        /// Number of vertices in the hypergraph.
        num_vertices: usize,
        /// Length of the provided assignment.
        assignment_len: usize,
    },
    /// A vertex was assigned a partition id at or beyond `num_parts`.
    PartOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The out-of-range partition id.
        part: PartId,
        /// Number of partitions in the problem.
        num_parts: usize,
    },
    /// A fixed vertex was assigned to a partition its fixity forbids.
    FixedViolation {
        /// The offending vertex.
        vertex: VertexId,
        /// The partition the assignment placed it in.
        part: PartId,
    },
    /// `num_parts` exceeds the supported maximum (64, the width of
    /// [`crate::PartSet`]).
    TooManyParts {
        /// Requested partition count.
        num_parts: usize,
    },
}

impl fmt::Display for PartitionInputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionInputError::LengthMismatch {
                num_vertices,
                assignment_len,
            } => write!(
                f,
                "assignment has {assignment_len} entries for a hypergraph with {num_vertices} vertices"
            ),
            PartitionInputError::PartOutOfRange {
                vertex,
                part,
                num_parts,
            } => write!(
                f,
                "vertex {vertex} assigned to {part} but only {num_parts} partitions exist"
            ),
            PartitionInputError::FixedViolation { vertex, part } => {
                write!(f, "fixed vertex {vertex} may not be placed in {part}")
            }
            PartitionInputError::TooManyParts { num_parts } => {
                write!(f, "{num_parts} partitions requested, at most 64 supported")
            }
        }
    }
}

impl Error for PartitionInputError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildError::EmptyNet { net: NetId(4) };
        assert_eq!(e.to_string(), "net n4 has no pins");

        let e = PartitionInputError::TooManyParts { num_parts: 65 };
        assert!(e.to_string().contains("65"));
        assert!(e
            .to_string()
            .starts_with(|c: char| c.is_lowercase() || c.is_ascii_digit()));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildError>();
        assert_err::<PartitionInputError>();
    }
}
