//! Fixed-vertex assignments.
//!
//! Section IV of the paper calls for "flexible assignment of fixed terminals
//! to partitions", including fixing a terminal in *more than one* partition
//! while retaining its atomic nature (the multiple assignment is an *or*).
//! [`Fixity`] models exactly that: a vertex is free, pinned to one
//! partition, or constrained to a set of allowed partitions.

use std::fmt;

use crate::PartId;

/// A set of partition ids, stored as a 64-bit mask (so at most 64
/// partitions are supported — far beyond any practical k for this domain).
///
/// # Example
/// ```
/// use vlsi_hypergraph::{PartId, PartSet};
/// let s: PartSet = [PartId(0), PartId(2)].into_iter().collect();
/// assert!(s.contains(PartId(0)));
/// assert!(!s.contains(PartId(1)));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PartSet(u64);

impl PartSet {
    /// The maximum partition id representable in a `PartSet`.
    pub const MAX_PARTS: usize = 64;

    /// Creates an empty set.
    ///
    /// # Example
    /// ```
    /// use vlsi_hypergraph::PartSet;
    /// assert!(PartSet::new().is_empty());
    /// ```
    #[inline]
    pub fn new() -> Self {
        PartSet(0)
    }

    /// Creates a set containing a single partition.
    ///
    /// # Panics
    /// Panics if `part.index() >= 64`.
    #[inline]
    pub fn single(part: PartId) -> Self {
        let mut s = PartSet::new();
        s.insert(part);
        s
    }

    /// Creates the full set `{0, …, num_parts-1}`.
    ///
    /// # Panics
    /// Panics if `num_parts > 64`.
    #[inline]
    pub fn all(num_parts: usize) -> Self {
        assert!(num_parts <= Self::MAX_PARTS, "at most 64 partitions");
        if num_parts == Self::MAX_PARTS {
            PartSet(u64::MAX)
        } else {
            PartSet((1u64 << num_parts) - 1)
        }
    }

    /// Adds a partition to the set.
    ///
    /// # Panics
    /// Panics if `part.index() >= 64`.
    #[inline]
    pub fn insert(&mut self, part: PartId) {
        assert!(part.index() < Self::MAX_PARTS, "partition id must be < 64");
        self.0 |= 1u64 << part.0;
    }

    /// Removes a partition from the set.
    #[inline]
    pub fn remove(&mut self, part: PartId) {
        if part.index() < Self::MAX_PARTS {
            self.0 &= !(1u64 << part.0);
        }
    }

    /// Returns `true` if `part` is in the set.
    #[inline]
    pub fn contains(self, part: PartId) -> bool {
        part.index() < Self::MAX_PARTS && self.0 & (1u64 << part.0) != 0
    }

    /// Number of partitions in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained partition ids in increasing order.
    ///
    /// # Example
    /// ```
    /// use vlsi_hypergraph::{PartId, PartSet};
    /// let s: PartSet = [PartId(3), PartId(1)].into_iter().collect();
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![PartId(1), PartId(3)]);
    /// ```
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: PartSet) -> PartSet {
        PartSet(self.0 & other.0)
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: PartSet) -> PartSet {
        PartSet(self.0 | other.0)
    }
}

impl FromIterator<PartId> for PartSet {
    fn from_iter<I: IntoIterator<Item = PartId>>(iter: I) -> Self {
        let mut s = PartSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<PartId> for PartSet {
    fn extend<I: IntoIterator<Item = PartId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Display for PartSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the partition ids in a [`PartSet`], produced by
/// [`PartSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = PartId;

    fn next(&mut self) -> Option<PartId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(PartId(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// The fixity of a single vertex.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{Fixity, PartId, PartSet};
/// assert!(Fixity::Free.allows(PartId(5)));
/// assert!(Fixity::Fixed(PartId(1)).allows(PartId(1)));
/// assert!(!Fixity::Fixed(PartId(1)).allows(PartId(0)));
/// let or = Fixity::FixedAny(PartSet::all(2));
/// assert!(or.allows(PartId(0)) && or.allows(PartId(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fixity {
    /// The vertex may be placed in any partition.
    #[default]
    Free,
    /// The vertex must stay in exactly this partition.
    Fixed(PartId),
    /// The vertex must stay in one of these partitions ("or" semantics);
    /// the partitioner may choose which, but may not move it outside the set.
    FixedAny(PartSet),
}

impl Fixity {
    /// Returns `true` if a vertex with this fixity may be placed in `part`.
    #[inline]
    pub fn allows(self, part: PartId) -> bool {
        match self {
            Fixity::Free => true,
            Fixity::Fixed(p) => p == part,
            Fixity::FixedAny(set) => set.contains(part),
        }
    }

    /// Returns `true` for [`Fixity::Free`].
    #[inline]
    pub fn is_free(self) -> bool {
        matches!(self, Fixity::Free)
    }

    /// Returns `true` if the vertex is constrained at all (fixed in one
    /// partition or in a set).
    #[inline]
    pub fn is_fixed(self) -> bool {
        !self.is_free()
    }

    /// Returns `true` if the vertex cannot ever move: it is pinned to a
    /// single partition (either `Fixed` or a one-element `FixedAny`).
    #[inline]
    pub fn is_immovable(self) -> bool {
        match self {
            Fixity::Free => false,
            Fixity::Fixed(_) => true,
            Fixity::FixedAny(set) => set.len() <= 1,
        }
    }
}

impl fmt::Display for Fixity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fixity::Free => write!(f, "free"),
            Fixity::Fixed(p) => write!(f, "fixed({p})"),
            Fixity::FixedAny(s) => write!(f, "fixed{s}"),
        }
    }
}

/// Per-vertex fixity table for a hypergraph.
///
/// A `FixedVertices` is a dense vector parallel to the vertex array. The
/// all-free table is the default and allocates one enum per vertex.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{FixedVertices, Fixity, PartId, VertexId};
/// let mut fx = FixedVertices::all_free(3);
/// fx.fix(VertexId(1), PartId(0));
/// assert_eq!(fx.num_fixed(), 1);
/// assert!(fx.fixity(VertexId(1)).is_fixed());
/// assert!(fx.fixity(VertexId(0)).is_free());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FixedVertices {
    fixities: Vec<Fixity>,
}

impl FixedVertices {
    /// Creates a table with every vertex free.
    pub fn all_free(num_vertices: usize) -> Self {
        FixedVertices {
            fixities: vec![Fixity::Free; num_vertices],
        }
    }

    /// Creates a table from an explicit fixity vector.
    pub fn from_fixities(fixities: Vec<Fixity>) -> Self {
        FixedVertices { fixities }
    }

    /// Number of vertices covered by this table.
    pub fn len(&self) -> usize {
        self.fixities.len()
    }

    /// Returns `true` if the table covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.fixities.is_empty()
    }

    /// The fixity of `vertex`.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn fixity(&self, vertex: crate::VertexId) -> Fixity {
        self.fixities[vertex.index()]
    }

    /// Pins `vertex` into `part`.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    pub fn fix(&mut self, vertex: crate::VertexId, part: PartId) {
        self.fixities[vertex.index()] = Fixity::Fixed(part);
    }

    /// Constrains `vertex` to the given set of allowed partitions.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range or `allowed` is empty.
    pub fn fix_any(&mut self, vertex: crate::VertexId, allowed: PartSet) {
        assert!(!allowed.is_empty(), "allowed set must be non-empty");
        self.fixities[vertex.index()] = Fixity::FixedAny(allowed);
    }

    /// Releases `vertex` back to free.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    pub fn free(&mut self, vertex: crate::VertexId) {
        self.fixities[vertex.index()] = Fixity::Free;
    }

    /// Sets an arbitrary fixity.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    pub fn set(&mut self, vertex: crate::VertexId, fixity: Fixity) {
        self.fixities[vertex.index()] = fixity;
    }

    /// Number of vertices that are constrained (not free).
    pub fn num_fixed(&self) -> usize {
        self.fixities.iter().filter(|f| f.is_fixed()).count()
    }

    /// Fraction of vertices that are constrained, in `[0, 1]`.
    pub fn fixed_fraction(&self) -> f64 {
        if self.fixities.is_empty() {
            0.0
        } else {
            self.num_fixed() as f64 / self.fixities.len() as f64
        }
    }

    /// Iterates over `(vertex, fixity)` pairs for the fixed vertices only.
    pub fn iter_fixed(&self) -> impl Iterator<Item = (crate::VertexId, Fixity)> + '_ {
        self.fixities
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_fixed())
            .map(|(i, f)| (crate::VertexId::from_index(i), *f))
    }

    /// Access to the raw fixity slice.
    pub fn as_slice(&self) -> &[Fixity] {
        &self.fixities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexId;

    #[test]
    fn partset_basic_ops() {
        let mut s = PartSet::new();
        assert!(s.is_empty());
        s.insert(PartId(0));
        s.insert(PartId(63));
        assert_eq!(s.len(), 2);
        assert!(s.contains(PartId(63)));
        s.remove(PartId(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![PartId(63)]);
    }

    #[test]
    fn partset_all() {
        assert_eq!(PartSet::all(2).len(), 2);
        assert_eq!(PartSet::all(64).len(), 64);
        assert_eq!(PartSet::all(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn partset_all_rejects_over_64() {
        let _ = PartSet::all(65);
    }

    #[test]
    fn partset_union_intersection() {
        let a: PartSet = [PartId(0), PartId(1)].into_iter().collect();
        let b: PartSet = [PartId(1), PartId(2)].into_iter().collect();
        assert_eq!(a.intersection(b), PartSet::single(PartId(1)));
        assert_eq!(a.union(b).len(), 3);
    }

    #[test]
    fn partset_display() {
        let s: PartSet = [PartId(2), PartId(0)].into_iter().collect();
        assert_eq!(s.to_string(), "{p0,p2}");
    }

    #[test]
    fn fixity_allows() {
        assert!(Fixity::Free.allows(PartId(7)));
        assert!(Fixity::Fixed(PartId(1)).allows(PartId(1)));
        assert!(!Fixity::Fixed(PartId(1)).allows(PartId(2)));
        let or = Fixity::FixedAny([PartId(0), PartId(3)].into_iter().collect());
        assert!(or.allows(PartId(3)));
        assert!(!or.allows(PartId(1)));
    }

    #[test]
    fn fixity_immovable() {
        assert!(!Fixity::Free.is_immovable());
        assert!(Fixity::Fixed(PartId(0)).is_immovable());
        assert!(Fixity::FixedAny(PartSet::single(PartId(2))).is_immovable());
        assert!(!Fixity::FixedAny(PartSet::all(2)).is_immovable());
    }

    #[test]
    fn fixed_vertices_counts() {
        let mut fx = FixedVertices::all_free(4);
        assert_eq!(fx.num_fixed(), 0);
        assert_eq!(fx.fixed_fraction(), 0.0);
        fx.fix(VertexId(0), PartId(1));
        fx.fix_any(VertexId(2), PartSet::all(2));
        assert_eq!(fx.num_fixed(), 2);
        assert!((fx.fixed_fraction() - 0.5).abs() < 1e-12);
        fx.free(VertexId(0));
        assert_eq!(fx.num_fixed(), 1);
    }

    #[test]
    fn iter_fixed_yields_only_fixed() {
        let mut fx = FixedVertices::all_free(3);
        fx.fix(VertexId(2), PartId(0));
        let fixed: Vec<_> = fx.iter_fixed().collect();
        assert_eq!(fixed, vec![(VertexId(2), Fixity::Fixed(PartId(0)))]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn fix_any_rejects_empty_set() {
        let mut fx = FixedVertices::all_free(1);
        fx.fix_any(VertexId(0), PartSet::new());
    }

    #[test]
    fn empty_table_fraction_is_zero() {
        assert_eq!(FixedVertices::all_free(0).fixed_fraction(), 0.0);
    }
}
