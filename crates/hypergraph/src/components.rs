//! Connected components of a hypergraph (vertices linked through shared
//! nets).

use crate::{Hypergraph, VertexId};

/// Labels each vertex with a dense component id (`0..num_components`),
/// returning `(labels, num_components)`. Vertices incident to no net form
/// singleton components.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{connected_components, HypergraphBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let a = b.add_vertex(1);
/// let c = b.add_vertex(1);
/// let isolated = b.add_vertex(1);
/// b.add_net(1, [a, c])?;
/// let hg = b.build()?;
/// let (labels, n) = connected_components(&hg);
/// assert_eq!(n, 2);
/// assert_eq!(labels[a.index()], labels[c.index()]);
/// assert_ne!(labels[a.index()], labels[isolated.index()]);
/// # Ok(())
/// # }
/// ```
pub fn connected_components(hg: &Hypergraph) -> (Vec<u32>, usize) {
    const UNSEEN: u32 = u32::MAX;
    let mut labels = vec![UNSEEN; hg.num_vertices()];
    let mut next = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in hg.vertices() {
        if labels[start.index()] != UNSEEN {
            continue;
        }
        labels[start.index()] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &n in hg.vertex_nets(v) {
                for &u in hg.net_pins(n) {
                    if labels[u.index()] == UNSEEN {
                        labels[u.index()] = next;
                        stack.push(u);
                    }
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Size (vertex count) of the largest connected component.
pub fn largest_component_size(hg: &Hypergraph) -> usize {
    let (labels, n) = connected_components(hg);
    let mut sizes = vec![0usize; n];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    #[test]
    fn single_net_is_one_component() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, v.clone()).unwrap();
        let hg = b.build().unwrap();
        let (labels, n) = connected_components(&hg);
        assert_eq!(n, 1);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(largest_component_size(&hg), 4);
    }

    #[test]
    fn disjoint_nets_make_components() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[2], v[3], v[4]]).unwrap();
        let hg = b.build().unwrap();
        let (labels, n) = connected_components(&hg);
        assert_eq!(n, 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(largest_component_size(&hg), 3);
    }

    #[test]
    fn empty_graph() {
        let hg = HypergraphBuilder::new().build().unwrap();
        let (labels, n) = connected_components(&hg);
        assert!(labels.is_empty());
        assert_eq!(n, 0);
        assert_eq!(largest_component_size(&hg), 0);
    }
}
