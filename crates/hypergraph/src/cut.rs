//! Cut objectives and the incrementally-maintained per-net pin distribution.

use std::fmt;

use crate::{Hypergraph, NetId, PartId, VertexId};

/// Partitioning objective functions.
///
/// The paper (and all its tables/figures) uses minimum cut
/// ([`Objective::Cut`]); the multiway extension also supports the k−1 and
/// sum-of-external-degrees metrics common in the literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Weighted number of nets spanning more than one partition.
    #[default]
    Cut,
    /// Sum over nets of `(span − 1) · weight`; equals `Cut` for bipartitions.
    KMinus1,
    /// Sum of external degrees: for each cut net, `span · weight`.
    Soed,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Cut => write!(f, "cut"),
            Objective::KMinus1 => write!(f, "k-1"),
            Objective::Soed => write!(f, "soed"),
        }
    }
}

/// Per-net pin distribution over partitions, maintained incrementally as
/// vertices move.
///
/// For every net the number of its pins in each partition is tracked,
/// together with the net's *span* (number of partitions it touches) and the
/// aggregate cut / k−1 objective values. A single vertex move updates in
/// O(degree · adjacent net sizes ... no — O(degree)) time.
///
/// This is the workhorse under both the FM engines and the validators.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{CutState, HypergraphBuilder, NetId, PartId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(1);
/// let v = b.add_vertex(1);
/// b.add_net(1, [u, v])?;
/// let hg = b.build()?;
///
/// let mut cs = CutState::new(&hg, 2, &[PartId(0), PartId(1)]);
/// assert_eq!(cs.cut(), 1);
/// cs.move_vertex(&hg, v, PartId(1), PartId(0));
/// assert_eq!(cs.cut(), 0);
/// assert_eq!(cs.pins_in(NetId(0), PartId(0)), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutState {
    num_parts: usize,
    /// Flat `num_nets × num_parts` pin-count matrix.
    counts: Vec<u32>,
    /// Per-net span (number of partitions with ≥ 1 pin).
    spans: Vec<u32>,
    /// Weighted count of nets with span ≥ 2.
    cut: u64,
    /// Weighted `Σ (span − 1)`.
    kminus1: u64,
}

impl CutState {
    /// Builds the distribution for `assignment` (one `PartId` per vertex).
    ///
    /// # Panics
    /// Panics if `assignment.len() != hg.num_vertices()` or any part id is
    /// `>= num_parts`.
    pub fn new(hg: &Hypergraph, num_parts: usize, assignment: &[PartId]) -> Self {
        assert_eq!(assignment.len(), hg.num_vertices(), "assignment length");
        let mut counts = vec![0u32; hg.num_nets() * num_parts];
        let mut spans = vec![0u32; hg.num_nets()];
        let mut cut = 0u64;
        let mut kminus1 = 0u64;
        for net in hg.nets() {
            let base = net.index() * num_parts;
            for &pin in hg.net_pins(net) {
                let p = assignment[pin.index()];
                assert!(p.index() < num_parts, "part id out of range");
                counts[base + p.index()] += 1;
            }
            let span = counts[base..base + num_parts]
                .iter()
                .filter(|&&c| c > 0)
                .count() as u32;
            spans[net.index()] = span;
            if span >= 2 {
                cut += hg.net_weight(net);
                kminus1 += (span as u64 - 1) * hg.net_weight(net);
            }
        }
        CutState {
            num_parts,
            counts,
            spans,
            cut,
            kminus1,
        }
    }

    /// Number of partitions tracked.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of `net`'s pins currently in `part`.
    ///
    /// # Panics
    /// Panics if `net` or `part` is out of range.
    #[inline]
    pub fn pins_in(&self, net: NetId, part: PartId) -> u32 {
        self.counts[net.index() * self.num_parts + part.index()]
    }

    /// Number of partitions `net` currently touches.
    ///
    /// # Panics
    /// Panics if `net` is out of range.
    #[inline]
    pub fn span(&self, net: NetId) -> u32 {
        self.spans[net.index()]
    }

    /// Returns `true` if `net` is cut (spans ≥ 2 partitions).
    #[inline]
    pub fn is_cut(&self, net: NetId) -> bool {
        self.spans[net.index()] >= 2
    }

    /// Current weighted cut.
    #[inline]
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Current weighted k−1 objective.
    #[inline]
    pub fn kminus1(&self) -> u64 {
        self.kminus1
    }

    /// Current value of the requested objective.
    pub fn value(&self, objective: Objective) -> u64 {
        match objective {
            Objective::Cut => self.cut,
            Objective::KMinus1 => self.kminus1,
            // SOED = Σ_cut span·w = (k−1 objective) + (cut objective).
            Objective::Soed => self.kminus1 + self.cut,
        }
    }

    /// Applies the move of `vertex` from `from` to `to`, updating all counts,
    /// spans and objective values. A no-op when `from == to`.
    ///
    /// The caller is responsible for `from` being `vertex`'s current side —
    /// this is checked only via `debug_assert` (the hot path of FM).
    ///
    /// # Panics
    /// Panics (in debug builds) if a net has no pins recorded in `from`.
    pub fn move_vertex(&mut self, hg: &Hypergraph, vertex: VertexId, from: PartId, to: PartId) {
        if from == to {
            return;
        }
        for &net in hg.vertex_nets(vertex) {
            let base = net.index() * self.num_parts;
            let w = hg.net_weight(net);
            let from_count = &mut self.counts[base + from.index()];
            debug_assert!(*from_count > 0, "moving vertex not counted in 'from'");
            *from_count -= 1;
            let from_emptied = *from_count == 0;
            let to_count = &mut self.counts[base + to.index()];
            let to_filled = *to_count == 0;
            *to_count += 1;

            let old_span = self.spans[net.index()];
            let new_span = old_span + u32::from(to_filled) - u32::from(from_emptied);
            if new_span != old_span {
                self.spans[net.index()] = new_span;
                if old_span >= 2 {
                    self.kminus1 -= (old_span as u64 - 1) * w;
                    self.cut -= w;
                }
                if new_span >= 2 {
                    self.kminus1 += (new_span as u64 - 1) * w;
                    self.cut += w;
                }
            }
        }
    }
}

/// Recomputes the objective from scratch — O(pins). Used by validators and
/// property tests to confirm incremental maintenance.
pub(crate) fn recompute_value(
    hg: &Hypergraph,
    num_parts: usize,
    assignment: &[PartId],
    objective: Objective,
) -> u64 {
    CutState::new(hg, num_parts, assignment).value(objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn chain(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in v.windows(2) {
            b.add_net(1, [w[0], w[1]]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn initial_cut_counted() {
        let hg = chain(4);
        let parts = vec![PartId(0), PartId(0), PartId(1), PartId(1)];
        let cs = CutState::new(&hg, 2, &parts);
        assert_eq!(cs.cut(), 1);
        assert_eq!(cs.kminus1(), 1);
        assert_eq!(cs.value(Objective::Soed), 2);
    }

    #[test]
    fn move_updates_cut_both_directions() {
        let hg = chain(3);
        let mut cs = CutState::new(&hg, 2, &[PartId(0), PartId(0), PartId(0)]);
        assert_eq!(cs.cut(), 0);
        cs.move_vertex(&hg, VertexId(1), PartId(0), PartId(1));
        assert_eq!(cs.cut(), 2);
        cs.move_vertex(&hg, VertexId(1), PartId(1), PartId(0));
        assert_eq!(cs.cut(), 0);
    }

    #[test]
    fn move_to_same_part_is_noop() {
        let hg = chain(3);
        let mut cs = CutState::new(&hg, 2, &[PartId(0); 3]);
        let before = cs.clone();
        cs.move_vertex(&hg, VertexId(0), PartId(0), PartId(0));
        assert_eq!(cs, before);
    }

    #[test]
    fn multiway_span_and_soed() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(1)).collect();
        b.add_net(2, v.clone()).unwrap();
        let hg = b.build().unwrap();
        let mut cs = CutState::new(&hg, 3, &[PartId(0), PartId(1), PartId(2)]);
        assert_eq!(cs.span(NetId(0)), 3);
        assert_eq!(cs.value(Objective::Cut), 2);
        assert_eq!(cs.value(Objective::KMinus1), 4);
        assert_eq!(cs.value(Objective::Soed), 6);
        cs.move_vertex(&hg, v[2], PartId(2), PartId(1));
        assert_eq!(cs.span(NetId(0)), 2);
        assert_eq!(cs.value(Objective::KMinus1), 2);
    }

    #[test]
    fn weighted_nets() {
        let mut b = HypergraphBuilder::new();
        let u = b.add_vertex(1);
        let v = b.add_vertex(1);
        b.add_net(7, [u, v]).unwrap();
        let hg = b.build().unwrap();
        let cs = CutState::new(&hg, 2, &[PartId(0), PartId(1)]);
        assert_eq!(cs.cut(), 7);
    }

    #[test]
    fn incremental_matches_recompute_on_random_walk() {
        use vlsi_rng::prelude::*;
        let hg = chain(20);
        let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(11);
        let mut parts: Vec<PartId> = (0..20).map(|_| PartId(rng.gen_range(0..3))).collect();
        let mut cs = CutState::new(&hg, 3, &parts);
        for _ in 0..200 {
            let v = VertexId(rng.gen_range(0..20));
            let to = PartId(rng.gen_range(0..3));
            let from = parts[v.index()];
            cs.move_vertex(&hg, v, from, to);
            parts[v.index()] = to;
            for &obj in &[Objective::Cut, Objective::KMinus1, Objective::Soed] {
                assert_eq!(cs.value(obj), recompute_value(&hg, 3, &parts, obj));
            }
        }
    }

    /// Random hypergraph: `n` unit vertices, `m` nets of 2–4 distinct pins.
    fn random_hg(n: usize, m: usize, rng: &mut vlsi_rng::ChaCha8Rng) -> Hypergraph {
        use vlsi_rng::Rng;
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for _ in 0..m {
            let size = rng.gen_range(2..=4usize.min(n));
            let mut pins = Vec::with_capacity(size);
            while pins.len() < size {
                let cand = v[rng.gen_range(0..n)];
                if !pins.contains(&cand) {
                    pins.push(cand);
                }
            }
            b.add_net(rng.gen_range(1..4u64), pins).unwrap();
        }
        b.build().unwrap()
    }

    /// FM's bipartition gain formula (+w when the vertex is the last pin on
    /// its side, −w when the other side has none) must equal the *actual*
    /// cut delta realised by `move_vertex` — and the incrementally moved
    /// state must equal a from-scratch `CutState` — on random instances.
    #[test]
    fn gain_formula_matches_cut_delta_on_random_instances() {
        use vlsi_rng::{Rng, SeedableRng};
        let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(77);
        for trial in 0..50 {
            let n = rng.gen_range(4..30usize);
            let hg = random_hg(n, rng.gen_range(3..3 * n), &mut rng);
            let mut parts: Vec<PartId> = (0..n).map(|_| PartId(rng.gen_range(0..2))).collect();
            let mut cs = CutState::new(&hg, 2, &parts);
            for step in 0..60 {
                let v = VertexId(rng.gen_range(0..n as u32));
                let from = parts[v.index()];
                let to = PartId(1 - from.0);
                // The textbook FM gain of moving v from `from` to `to`.
                let mut gain = 0i64;
                for &net in hg.vertex_nets(v) {
                    let w = hg.net_weight(net) as i64;
                    if cs.pins_in(net, from) == 1 {
                        gain += w;
                    }
                    if cs.pins_in(net, to) == 0 {
                        gain -= w;
                    }
                }
                let before = cs.cut() as i64;
                cs.move_vertex(&hg, v, from, to);
                parts[v.index()] = to;
                assert_eq!(
                    before - cs.cut() as i64,
                    gain,
                    "trial {trial} step {step}: gain disagrees with cut delta"
                );
                let fresh = CutState::new(&hg, 2, &parts);
                assert_eq!(cs.cut(), fresh.cut());
                assert_eq!(cs.kminus1(), fresh.kminus1());
            }
        }
    }

    /// The random-walk recompute check again, but on random (non-chain)
    /// multiway instances: incremental maintenance of every objective must
    /// agree with from-scratch recomputation after each move.
    #[test]
    fn incremental_matches_recompute_on_random_instances() {
        use vlsi_rng::{Rng, SeedableRng};
        let mut rng = vlsi_rng::ChaCha8Rng::seed_from_u64(91);
        for _ in 0..20 {
            let n = rng.gen_range(5..25usize);
            let k = rng.gen_range(2..5usize);
            let hg = random_hg(n, 2 * n, &mut rng);
            let mut parts: Vec<PartId> =
                (0..n).map(|_| PartId(rng.gen_range(0..k as u32))).collect();
            let mut cs = CutState::new(&hg, k, &parts);
            for _ in 0..80 {
                let v = VertexId(rng.gen_range(0..n as u32));
                let to = PartId(rng.gen_range(0..k as u32));
                let from = parts[v.index()];
                cs.move_vertex(&hg, v, from, to);
                parts[v.index()] = to;
                for &obj in &[Objective::Cut, Objective::KMinus1, Objective::Soed] {
                    assert_eq!(cs.value(obj), recompute_value(&hg, k, &parts, obj));
                }
            }
        }
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::Cut.to_string(), "cut");
        assert_eq!(Objective::KMinus1.to_string(), "k-1");
        assert_eq!(Objective::Soed.to_string(), "soed");
    }
}
