//! Incremental construction of [`Hypergraph`] values.

use std::fmt::Write as _;

use crate::error::BuildError;
use crate::graph::{Hypergraph, NameTable};
use crate::{NetId, VertexId};

/// Builder for [`Hypergraph`].
///
/// Vertices are added first (optionally with multi-resource weights), nets
/// reference them. [`HypergraphBuilder::build`] packs everything into
/// immutable CSR arrays.
///
/// Names are kept as a sparse `(vertex, name)` log rather than a dense
/// per-vertex slot, so an unnamed million-vertex graph pays nothing for
/// the feature; [`HypergraphBuilder::build`] packs the log into the
/// graph's name arena (last write per vertex wins).
///
/// # Example
/// ```
/// use vlsi_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let a = b.add_vertex(2);
/// let c = b.add_vertex(3);
/// b.add_net(1, [a, c])?;
/// let hg = b.build()?;
/// assert_eq!(hg.num_vertices(), 2);
/// assert_eq!(hg.total_weight(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HypergraphBuilder {
    num_resources: usize,
    num_vertices: usize,
    weights: Vec<u64>,
    /// Sparse name log; packed into a [`NameTable`] by `build`.
    names: Vec<(VertexId, String)>,
    net_weights: Vec<u64>,
    net_offsets: Vec<u32>,
    net_pins: Vec<VertexId>,
}

impl Default for HypergraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl HypergraphBuilder {
    /// Creates a builder for single-resource (scalar-weight) hypergraphs.
    pub fn new() -> Self {
        Self::with_resources(1)
    }

    /// Creates a builder whose vertices carry `num_resources` weights each
    /// (Section IV: multi-balanced partitioning, e.g. area + pin count +
    /// power).
    ///
    /// # Panics
    /// Panics if `num_resources == 0`.
    pub fn with_resources(num_resources: usize) -> Self {
        assert!(num_resources >= 1, "at least one resource type required");
        HypergraphBuilder {
            num_resources,
            num_vertices: 0,
            weights: Vec::new(),
            names: Vec::new(),
            net_weights: Vec::new(),
            net_offsets: vec![0],
            net_pins: Vec::new(),
        }
    }

    /// Pre-allocates space for the given numbers of vertices, nets and pins
    /// in a single-resource builder.
    pub fn with_capacity(num_vertices: usize, num_nets: usize, num_pins: usize) -> Self {
        Self::with_capacity_and_resources(num_vertices, num_nets, num_pins, 1)
    }

    /// Pre-allocates space for a multi-resource builder: reserves
    /// `num_vertices * num_resources` weight slots so the reservation is
    /// exact for any resource arity.
    ///
    /// # Panics
    /// Panics if `num_resources == 0`.
    pub fn with_capacity_and_resources(
        num_vertices: usize,
        num_nets: usize,
        num_pins: usize,
        num_resources: usize,
    ) -> Self {
        let mut b = Self::with_resources(num_resources);
        b.weights.reserve(num_vertices * num_resources);
        b.net_weights.reserve(num_nets);
        b.net_offsets.reserve(num_nets + 1);
        b.net_pins.reserve(num_pins);
        b
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Number of pins added so far.
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Adds a vertex with a scalar weight (resource 0); any additional
    /// resources are zero.
    pub fn add_vertex(&mut self, weight: u64) -> VertexId {
        let id = VertexId::from_index(self.num_vertices);
        self.weights.push(weight);
        self.weights
            .extend(std::iter::repeat_n(0, self.num_resources - 1));
        self.num_vertices += 1;
        id
    }

    /// Adds a vertex with one weight per resource type.
    ///
    /// # Errors
    /// Returns [`BuildError::ResourceArity`] if `weights.len()` differs from
    /// the builder's resource count.
    pub fn add_vertex_multi(&mut self, weights: &[u64]) -> Result<VertexId, BuildError> {
        if weights.len() != self.num_resources {
            return Err(BuildError::ResourceArity {
                vertex: VertexId::from_index(self.num_vertices),
                expected: self.num_resources,
                found: weights.len(),
            });
        }
        let id = VertexId::from_index(self.num_vertices);
        self.weights.extend_from_slice(weights);
        self.num_vertices += 1;
        Ok(id)
    }

    /// Overwrites the primary (resource-0) weight of an existing vertex.
    ///
    /// The file formats list weights *after* connectivity (`.hgr` fmt
    /// 10/11, `.are` companions), so streaming parsers create unit-weight
    /// vertices first and patch them here instead of buffering the whole
    /// file or rebuilding the graph.
    ///
    /// # Panics
    /// Panics if `vertex` has not been added.
    pub fn set_vertex_weight(&mut self, vertex: VertexId, weight: u64) {
        assert!(
            vertex.index() < self.num_vertices,
            "set_vertex_weight on unknown vertex {vertex}"
        );
        self.weights[vertex.index() * self.num_resources] = weight;
    }

    /// Attaches a human-readable name to a vertex (used by the file formats).
    /// Naming the same vertex again replaces the earlier name.
    ///
    /// # Panics
    /// Panics if `vertex` has not been added.
    pub fn set_vertex_name(&mut self, vertex: VertexId, name: impl Into<String>) {
        assert!(
            vertex.index() < self.num_vertices,
            "set_vertex_name on unknown vertex {vertex}"
        );
        self.names.push((vertex, name.into()));
    }

    /// Adds a net with the given weight and pins.
    ///
    /// Single-pin nets are accepted (they can never be cut but occur in real
    /// netlists); duplicate pins within one net are rejected.
    ///
    /// # Errors
    /// * [`BuildError::EmptyNet`] if `pins` is empty.
    /// * [`BuildError::UnknownVertex`] if a pin references a vertex that was
    ///   never added.
    /// * [`BuildError::DuplicatePin`] if the same vertex appears twice.
    /// * [`BuildError::ArenaOverflow`] if the pin arena would exceed
    ///   `u32::MAX` entries.
    pub fn add_net<I>(&mut self, weight: u64, pins: I) -> Result<NetId, BuildError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let net = NetId::from_index(self.net_weights.len());
        let start = self.net_pins.len();
        for pin in pins {
            if pin.index() >= self.num_vertices {
                self.net_pins.truncate(start);
                return Err(BuildError::UnknownVertex {
                    vertex: pin,
                    num_vertices: self.num_vertices,
                });
            }
            if self.net_pins[start..].contains(&pin) {
                self.net_pins.truncate(start);
                return Err(BuildError::DuplicatePin { net, vertex: pin });
            }
            self.net_pins.push(pin);
        }
        if self.net_pins.len() == start {
            return Err(BuildError::EmptyNet { net });
        }
        self.finish_net(weight, start, net)
    }

    /// Like [`HypergraphBuilder::add_net`] but silently drops duplicate pins
    /// instead of failing — convenient when translating netlists in which a
    /// cell may legitimately connect to the same signal through several pins.
    ///
    /// # Errors
    /// Returns [`BuildError::EmptyNet`] / [`BuildError::UnknownVertex`] /
    /// [`BuildError::ArenaOverflow`] as [`HypergraphBuilder::add_net`] does.
    pub fn add_net_dedup<I>(&mut self, weight: u64, pins: I) -> Result<NetId, BuildError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let net = NetId::from_index(self.net_weights.len());
        let start = self.net_pins.len();
        for pin in pins {
            if pin.index() >= self.num_vertices {
                self.net_pins.truncate(start);
                return Err(BuildError::UnknownVertex {
                    vertex: pin,
                    num_vertices: self.num_vertices,
                });
            }
            if !self.net_pins[start..].contains(&pin) {
                self.net_pins.push(pin);
            }
        }
        if self.net_pins.len() == start {
            return Err(BuildError::EmptyNet { net });
        }
        self.finish_net(weight, start, net)
    }

    /// Commits a net whose pins `[start..]` are already staged, enforcing
    /// the `u32` offset bound of the CSR layout.
    fn finish_net(&mut self, weight: u64, start: usize, net: NetId) -> Result<NetId, BuildError> {
        let end = self.net_pins.len();
        if end > u32::MAX as usize {
            self.net_pins.truncate(start);
            return Err(BuildError::ArenaOverflow {
                arena: "pins",
                requested: end as u64,
            });
        }
        self.net_weights.push(weight);
        self.net_offsets.push(end as u32);
        Ok(net)
    }

    /// Finalizes the builder into an immutable [`Hypergraph`].
    ///
    /// # Errors
    /// Returns [`BuildError::ArenaOverflow`] if the packed name arena would
    /// exceed the `u32` offset range; otherwise infallible for inputs
    /// accepted by the `add_*` methods.
    pub fn build(self) -> Result<Hypergraph, BuildError> {
        let names = if self.names.is_empty() {
            None
        } else {
            // Pack the sparse log densely: stable sort keeps later writes
            // to the same vertex after earlier ones, so consuming every
            // matching entry leaves the last write in effect.
            let mut log = self.names;
            log.sort_by_key(|(v, _)| v.index());
            let mut table = NameTable::new();
            let mut it = log.iter().peekable();
            let mut scratch = String::new();
            for i in 0..self.num_vertices {
                let mut name: Option<&str> = None;
                while let Some((v, n)) = it.peek() {
                    if v.index() != i {
                        break;
                    }
                    name = Some(n.as_str());
                    it.next();
                }
                let packed = match name {
                    Some(n) => table.push(n),
                    None => {
                        scratch.clear();
                        write!(scratch, "v{i}").expect("write to String");
                        table.push(&scratch)
                    }
                };
                if !packed {
                    return Err(BuildError::ArenaOverflow {
                        arena: "names",
                        requested: u32::MAX as u64 + 1,
                    });
                }
            }
            Some(table)
        };
        Ok(Hypergraph::from_parts(
            self.num_resources,
            self.weights,
            names,
            self.net_weights,
            self.net_offsets,
            self.net_pins,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_graph() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i + 1)).collect();
        b.add_net(1, [v[0], v[1], v[2]]).unwrap();
        b.add_net(2, [v[2], v[3]]).unwrap();
        let hg = b.build().unwrap();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_nets(), 2);
        assert_eq!(hg.num_pins(), 5);
        assert_eq!(hg.total_weight(), 1 + 2 + 3 + 4);
        assert_eq!(hg.net_pins(NetId(0)), &[v[0], v[1], v[2]]);
        assert_eq!(hg.vertex_nets(v[2]), &[NetId(0), NetId(1)]);
    }

    #[test]
    fn empty_net_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        let err = b.add_net(1, []).unwrap_err();
        assert!(matches!(err, BuildError::EmptyNet { .. }));
    }

    #[test]
    fn unknown_vertex_rejected_and_builder_still_usable() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let err = b.add_net(1, [v0, VertexId(9)]).unwrap_err();
        assert!(matches!(err, BuildError::UnknownVertex { .. }));
        // failed add must not leave partial pins behind
        b.add_net(1, [v0]).unwrap();
        let hg = b.build().unwrap();
        assert_eq!(hg.num_pins(), 1);
    }

    #[test]
    fn duplicate_pin_rejected() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let err = b.add_net(1, [v0, v0]).unwrap_err();
        assert!(matches!(err, BuildError::DuplicatePin { .. }));
    }

    #[test]
    fn dedup_variant_drops_duplicates() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        b.add_net_dedup(1, [v0, v1, v0]).unwrap();
        let hg = b.build().unwrap();
        assert_eq!(hg.net_pins(NetId(0)).len(), 2);
    }

    #[test]
    fn multi_resource_weights() {
        let mut b = HypergraphBuilder::with_resources(3);
        let v = b.add_vertex_multi(&[4, 5, 6]).unwrap();
        let w = b.add_vertex(9); // scalar fills remaining resources with 0
        let hg = b.build().unwrap();
        assert_eq!(hg.vertex_weights(v), &[4, 5, 6]);
        assert_eq!(hg.vertex_weights(w), &[9, 0, 0]);
        assert_eq!(hg.total_weights(), &[13, 5, 6]);
    }

    #[test]
    fn resource_arity_checked() {
        let mut b = HypergraphBuilder::with_resources(2);
        let err = b.add_vertex_multi(&[1]).unwrap_err();
        assert!(matches!(err, BuildError::ResourceArity { .. }));
    }

    #[test]
    fn names_defaulted_when_any_set() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        b.set_vertex_name(v0, "pad_in");
        let hg = b.build().unwrap();
        assert_eq!(hg.vertex_name(v0), Some("pad_in"));
        assert_eq!(hg.vertex_name(v1), Some("v1"));
    }

    #[test]
    fn renaming_a_vertex_takes_the_last_write() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        b.set_vertex_name(v0, "first");
        b.set_vertex_name(v0, "second");
        let hg = b.build().unwrap();
        assert_eq!(hg.vertex_name(v0), Some("second"));
    }

    #[test]
    fn names_absent_when_never_set() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let hg = b.build().unwrap();
        assert_eq!(hg.vertex_name(v0), None);
    }

    #[test]
    #[should_panic(expected = "at least one resource")]
    fn zero_resources_rejected() {
        let _ = HypergraphBuilder::with_resources(0);
    }

    #[test]
    fn with_capacity_and_resources_keeps_resource_arity() {
        // Regression: `with_capacity` used to call `Self::new()`, silently
        // resetting `num_resources` to 1 and under-reserving weights.
        let mut b = HypergraphBuilder::with_capacity_and_resources(4, 2, 8, 3);
        assert!(b.weights.capacity() >= 12, "weights reserve V * R slots");
        let v = b.add_vertex_multi(&[1, 2, 3]).unwrap();
        let hg = b.build().unwrap();
        assert_eq!(hg.num_resources(), 3);
        assert_eq!(hg.vertex_weights(v), &[1, 2, 3]);
    }

    #[test]
    fn with_capacity_is_single_resource() {
        let mut b = HypergraphBuilder::with_capacity(2, 1, 2);
        let v = b.add_vertex(7);
        let hg = b.build().unwrap();
        assert_eq!(hg.num_resources(), 1);
        assert_eq!(hg.vertex_weight(v), 7);
    }
}
