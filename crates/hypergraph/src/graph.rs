//! The immutable CSR-packed hypergraph.

use crate::{NetId, VertexId};

/// Side-table arena for optional vertex names.
///
/// Instead of one heap `String` per vertex (24 bytes of header plus an
/// allocation each, even for graphs that are never named), all names live
/// concatenated in a single byte arena indexed by `u32` offsets — the same
/// CSR discipline as the pin arrays. Lookup is two offset reads and a
/// slice, and the whole table costs `4·(V+1)` bytes plus the name bytes
/// themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NameTable {
    bytes: String,
    /// `num_vertices + 1` offsets into `bytes`.
    offsets: Vec<u32>,
}

impl NameTable {
    /// An empty arena (zero names packed).
    pub(crate) fn new() -> Self {
        NameTable {
            bytes: String::new(),
            offsets: vec![0],
        }
    }

    /// Appends the next vertex's name. Returns `false` without modifying
    /// the arena if the concatenated names would overflow the `u32` offset
    /// range (>4 GiB of name bytes).
    pub(crate) fn push(&mut self, name: &str) -> bool {
        let end = self.bytes.len() + name.len();
        if end > u32::MAX as usize {
            return false;
        }
        self.bytes.push_str(name);
        self.offsets.push(end as u32);
        true
    }

    #[inline]
    pub(crate) fn get(&self, index: usize) -> &str {
        &self.bytes[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

/// An immutable hypergraph with weighted vertices and weighted nets.
///
/// Pin membership is stored twice in compressed sparse row (CSR) form:
/// net → pins and vertex → incident nets, so both directions are O(degree)
/// with no per-element allocation. Offsets are `u32` — 12 bytes per pin
/// across both directions — which bounds any single graph to `u32::MAX`
/// pins; [`crate::HypergraphBuilder`] reports overflow as a structured
/// error rather than truncating. Construct one with
/// [`crate::HypergraphBuilder`].
///
/// Vertex weights support multiple *resource types* (Section IV of the
/// paper: e.g. cell area, pin count, power); resource 0 is the primary
/// weight used by scalar APIs.
///
/// # Example
/// ```
/// use vlsi_hypergraph::{HypergraphBuilder, NetId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let u = b.add_vertex(1);
/// let v = b.add_vertex(1);
/// b.add_net(3, [u, v])?;
/// let hg = b.build()?;
/// assert_eq!(hg.net_weight(NetId(0)), 3);
/// assert_eq!(hg.vertex_degree(u), 1);
/// assert_eq!(hg.avg_pins_per_vertex(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_resources: usize,
    /// Flat `num_vertices * num_resources` weight matrix.
    weights: Vec<u64>,
    /// Per-resource totals.
    total_weights: Vec<u64>,
    names: Option<NameTable>,
    net_weights: Vec<u64>,
    net_offsets: Vec<u32>,
    net_pins: Vec<VertexId>,
    vertex_offsets: Vec<u32>,
    vertex_nets: Vec<NetId>,
}

impl Hypergraph {
    pub(crate) fn from_parts(
        num_resources: usize,
        weights: Vec<u64>,
        names: Option<NameTable>,
        net_weights: Vec<u64>,
        net_offsets: Vec<u32>,
        net_pins: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(weights.len() % num_resources, 0);
        let num_vertices = weights.len() / num_resources;
        debug_assert_eq!(net_offsets.len(), net_weights.len() + 1);
        debug_assert!(net_pins.len() <= u32::MAX as usize);

        let mut total_weights = vec![0u64; num_resources];
        for (i, w) in weights.iter().enumerate() {
            total_weights[i % num_resources] += w;
        }

        // Build the vertex -> nets CSR by counting then bucketing. The
        // degree array doubles as the per-vertex write cursor afterwards,
        // so no second offsets copy is ever allocated.
        let mut degree = vec![0u32; num_vertices];
        for pin in &net_pins {
            degree[pin.index()] += 1;
        }
        let mut vertex_offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0u32;
        vertex_offsets.push(acc);
        for d in degree.iter_mut() {
            acc += *d;
            vertex_offsets.push(acc);
            *d = 0;
        }
        let mut vertex_nets = vec![NetId(0); net_pins.len()];
        for net_idx in 0..net_weights.len() {
            let (start, end) = (
                net_offsets[net_idx] as usize,
                net_offsets[net_idx + 1] as usize,
            );
            for pin in &net_pins[start..end] {
                let p = pin.index();
                vertex_nets[(vertex_offsets[p] + degree[p]) as usize] = NetId::from_index(net_idx);
                degree[p] += 1;
            }
        }

        Hypergraph {
            num_resources,
            weights,
            total_weights,
            names,
            net_weights,
            net_offsets,
            net_pins,
            vertex_offsets,
            vertex_nets,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_offsets.len() - 1
    }

    /// Number of nets (hyperedges).
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Total number of pins (vertex–net incidences).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pins.len()
    }

    /// Number of resource types carried by each vertex.
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Primary (resource-0) weight of a vertex.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn vertex_weight(&self, vertex: VertexId) -> u64 {
        self.weights[vertex.index() * self.num_resources]
    }

    /// All resource weights of a vertex.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn vertex_weights(&self, vertex: VertexId) -> &[u64] {
        let s = vertex.index() * self.num_resources;
        &self.weights[s..s + self.num_resources]
    }

    /// Total primary weight over all vertices.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weights[0]
    }

    /// Per-resource weight totals.
    #[inline]
    pub fn total_weights(&self) -> &[u64] {
        &self.total_weights
    }

    /// Weight of a net.
    ///
    /// # Panics
    /// Panics if `net` is out of range.
    #[inline]
    pub fn net_weight(&self, net: NetId) -> u64 {
        self.net_weights[net.index()]
    }

    /// The pins (member vertices) of a net.
    ///
    /// # Panics
    /// Panics if `net` is out of range.
    #[inline]
    pub fn net_pins(&self, net: NetId) -> &[VertexId] {
        &self.net_pins
            [self.net_offsets[net.index()] as usize..self.net_offsets[net.index() + 1] as usize]
    }

    /// Number of pins on a net.
    ///
    /// # Panics
    /// Panics if `net` is out of range.
    #[inline]
    pub fn net_size(&self, net: NetId) -> usize {
        (self.net_offsets[net.index() + 1] - self.net_offsets[net.index()]) as usize
    }

    /// The nets incident to a vertex.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn vertex_nets(&self, vertex: VertexId) -> &[NetId] {
        &self.vertex_nets[self.vertex_offsets[vertex.index()] as usize
            ..self.vertex_offsets[vertex.index() + 1] as usize]
    }

    /// Degree (number of incident nets) of a vertex.
    ///
    /// # Panics
    /// Panics if `vertex` is out of range.
    #[inline]
    pub fn vertex_degree(&self, vertex: VertexId) -> usize {
        (self.vertex_offsets[vertex.index() + 1] - self.vertex_offsets[vertex.index()]) as usize
    }

    /// Optional human-readable vertex name (set via the builder or a parser).
    pub fn vertex_name(&self, vertex: VertexId) -> Option<&str> {
        self.names.as_ref().map(|t| t.get(vertex.index()))
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over all net ids.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.num_nets() as u32).map(NetId)
    }

    /// Average pins per vertex (the paper's Rent constant `k` observable).
    pub fn avg_pins_per_vertex(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_vertices() as f64
        }
    }

    /// Average pins per net.
    pub fn avg_pins_per_net(&self) -> f64 {
        if self.num_nets() == 0 {
            0.0
        } else {
            self.num_pins() as f64 / self.num_nets() as f64
        }
    }

    /// Largest primary vertex weight as a percentage of the total — the
    /// paper's `Max%` column of Table IV.
    pub fn max_weight_percent(&self) -> f64 {
        if self.total_weight() == 0 {
            return 0.0;
        }
        let max = self
            .vertices()
            .map(|v| self.vertex_weight(v))
            .max()
            .unwrap_or(0);
        100.0 * max as f64 / self.total_weight() as f64
    }

    /// Resident bytes of the CSR arenas (pins, offsets, weights, names) —
    /// the capacity-planning observable documented in
    /// `docs/ARCHITECTURE.md`. Excludes allocator overhead.
    pub fn arena_bytes(&self) -> usize {
        self.weights.len() * 8
            + self.total_weights.len() * 8
            + self.net_weights.len() * 8
            + self.net_offsets.len() * 4
            + self.net_pins.len() * 4
            + self.vertex_offsets.len() * 4
            + self.vertex_nets.len() * 4
            + self
                .names
                .as_ref()
                .map_or(0, |t| t.bytes.len() + t.offsets.len() * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn triangle() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(1)).collect();
        b.add_net(1, [v[0], v[1]]).unwrap();
        b.add_net(1, [v[1], v[2]]).unwrap();
        b.add_net(1, [v[2], v[0]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn csr_reverse_mapping_consistent() {
        let hg = triangle();
        for v in hg.vertices() {
            assert_eq!(hg.vertex_degree(v), 2);
            for n in hg.vertex_nets(v) {
                assert!(hg.net_pins(*n).contains(&v));
            }
        }
        for n in hg.nets() {
            for p in hg.net_pins(n) {
                assert!(hg.vertex_nets(*p).contains(&n));
            }
        }
    }

    #[test]
    fn pin_counts() {
        let hg = triangle();
        assert_eq!(hg.num_pins(), 6);
        assert_eq!(hg.avg_pins_per_vertex(), 2.0);
        assert_eq!(hg.avg_pins_per_net(), 2.0);
    }

    #[test]
    fn max_weight_percent() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_vertex(90);
        let c = b.add_vertex(10);
        b.add_net(1, [a, c]).unwrap();
        let hg = b.build().unwrap();
        assert!((hg.max_weight_percent() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let hg = HypergraphBuilder::new().build().unwrap();
        assert_eq!(hg.num_vertices(), 0);
        assert_eq!(hg.num_nets(), 0);
        assert_eq!(hg.avg_pins_per_vertex(), 0.0);
        assert_eq!(hg.avg_pins_per_net(), 0.0);
        assert_eq!(hg.max_weight_percent(), 0.0);
    }

    #[test]
    fn name_table_packs_and_resolves() {
        let mut t = NameTable::new();
        for n in ["a0", "", "pad_17"] {
            assert!(t.push(n));
        }
        assert_eq!(t.get(0), "a0");
        assert_eq!(t.get(1), "");
        assert_eq!(t.get(2), "pad_17");
    }

    #[test]
    fn arena_bytes_counts_pins_at_twelve_bytes() {
        let hg = triangle();
        // 6 pins × (4 net_pins + 4 vertex_nets) + offsets + weights.
        assert!(hg.arena_bytes() >= 6 * 8);
        assert_eq!(hg.arena_bytes() % 4, 0);
    }
}
