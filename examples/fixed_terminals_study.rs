//! A miniature version of the paper's core experiment (Figures 1–2):
//! sweep the fraction of fixed vertices and watch the instance become easy.
//!
//! Run with: `cargo run --release --example fixed_terminals_study`

use vlsi_experiments::figures::{run_figure, FigureConfig};
use vlsi_experiments::regimes::Regime;
use vlsi_netgen::instances::ibm01_like_scaled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ibm01_like_scaled(0.06, 11); // ~750 cells for a fast demo
    println!(
        "sweeping fixed fraction on {} ({} cells)…\n",
        circuit.name,
        circuit.num_cells()
    );

    let config = FigureConfig {
        percentages: vec![0.0, 2.0, 10.0, 20.0, 50.0],
        trials: 3,
        ..FigureConfig::default()
    };
    let fig = run_figure(&circuit.name, &circuit.hypergraph, &config)?;
    print!("{}", fig.render().to_text());
    println!("\nreference good cut: {}", fig.good_cut);

    // The paper's observations, stated on this run's data:
    let rand = fig.regime_points(Regime::Random);
    let first = rand.first().expect("sweep is non-empty");
    let last = rand.last().expect("sweep is non-empty");
    println!(
        "rand regime raw cut grows {:.0} -> {:.0} as fixing rises 0% -> 50%",
        first.raw[3], last.raw[3]
    );
    let gap_at = |p: &vlsi_experiments::figures::FigurePoint| p.raw[0] - p.raw[3];
    println!(
        "1-start vs 8-start gap: {:.1} at 0% fixed, {:.1} at 50% fixed —",
        gap_at(first),
        gap_at(last)
    );
    println!("with enough fixed terminals, multistart stops paying: the instance is easy.");
    Ok(())
}
