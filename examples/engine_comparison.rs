//! Compares every bipartitioning engine in the repository — multilevel
//! CLIP/LIFO FM, flat FM, Kernighan–Lin, and simulated annealing — on the
//! same instance, with and without fixed terminals.
//!
//! Run with: `cargo run --release --example engine_comparison`

use std::time::Instant;

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_experiments::harness::{find_good_solution, paper_balance};
use vlsi_experiments::regimes::{FixSchedule, Regime};
use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_partition::annealing::{simulated_annealing, AnnealingConfig};
use vlsi_partition::kl::{kernighan_lin, KlConfig};
use vlsi_partition::{random_initial, BipartFm, FmConfig, MultilevelConfig, MultilevelPartitioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ibm01_like_scaled(0.15, 7); // ~1900 cells
    let hg = &circuit.hypergraph;
    let balance = paper_balance(hg);
    println!(
        "{}: {} vertices, {} nets\n",
        circuit.name,
        hg.num_vertices(),
        hg.num_nets()
    );

    let good = find_good_solution(hg, &balance, &MultilevelConfig::default(), 4, 11)?;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let schedule = FixSchedule::new(hg, Regime::Good, &good.parts, &mut rng);

    println!(
        "{:>24}  {:>12}  {:>12}  {:>9}",
        "engine", "cut @ 0%", "cut @ 30%", "time"
    );
    for (name, which) in [
        ("multilevel (CLIP+LIFO)", 0usize),
        ("flat FM (LIFO)", 1),
        ("Kernighan-Lin", 2),
        ("simulated annealing", 3),
    ] {
        let mut cuts = [0u64; 2];
        let mut elapsed = std::time::Duration::ZERO;
        for (slot, pct) in [(0usize, 0.0f64), (1, 30.0)] {
            let fixed = schedule.at_percent(pct);
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let t0 = Instant::now();
            let cut = match which {
                0 => {
                    let ml = MultilevelPartitioner::new(MultilevelConfig::default());
                    ml.run(hg, &fixed, &balance, &mut rng)?.cut
                }
                1 => {
                    let fm = BipartFm::new(FmConfig::default());
                    fm.run_random(hg, &fixed, &balance, &mut rng)?.cut
                }
                2 => {
                    let initial = random_initial(hg, &fixed, &balance, 2, &mut rng)?;
                    kernighan_lin(hg, &fixed, &balance, initial, KlConfig::default())?.cut
                }
                _ => {
                    let initial = random_initial(hg, &fixed, &balance, 2, &mut rng)?;
                    simulated_annealing(
                        hg,
                        &fixed,
                        &balance,
                        initial,
                        AnnealingConfig::default(),
                        &mut rng,
                    )?
                    .cut
                }
            };
            elapsed += t0.elapsed();
            cuts[slot] = cut;
        }
        println!(
            "{:>24}  {:>12}  {:>12}  {:>8.3}s",
            name,
            cuts[0],
            cuts[1],
            elapsed.as_secs_f64()
        );
    }
    println!(
        "\nreference good cut: {} — the multilevel engine tracks it closely in\n\
         both regimes; the classical baselines (flat FM, KL, annealing) fall\n\
         progressively behind, which is exactly why the paper's testbed used\n\
         a leading-edge multilevel partitioner.",
        good.cut
    );
    Ok(())
}
