//! Benchmark derivation (the paper's Section IV / Table IV): generate a
//! placed circuit, lay blocks and cutlines over the placement, extract
//! fixed-terminal partitioning instances, and write them out in hMetis
//! `.hgr` + `.fix` format.
//!
//! Run with: `cargo run --release --example benchmark_generation`

use std::fs;

use vlsi_experiments::table4;
use vlsi_hypergraph::io::{write_fix, write_hgr};
use vlsi_netgen::instances::ibm01_like_scaled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ibm01_like_scaled(0.05, 3);
    let instances = table4::derive(&circuit, None);

    println!("Table IV for {}:\n", circuit.name);
    print!("{}", table4::render(&instances).to_text());

    let dir = std::env::temp_dir().join("fixed-terminal-benchmarks");
    fs::create_dir_all(&dir)?;
    for inst in &instances {
        let hgr_path = dir.join(format!("{}.hgr", inst.name));
        let fix_path = dir.join(format!("{}.fix", inst.name));
        write_hgr(fs::File::create(&hgr_path)?, &inst.hypergraph)?;
        write_fix(fs::File::create(&fix_path)?, &inst.fixed)?;
    }
    println!(
        "\nwrote {} instance pairs to {}",
        instances.len(),
        dir.display()
    );

    // Round-trip one of them to show the parsers.
    let first = &instances[0];
    let text = fs::read(dir.join(format!("{}.hgr", first.name)))?;
    let back = vlsi_hypergraph::io::read_hgr(text.as_slice())?;
    assert_eq!(back.num_nets(), first.hypergraph.num_nets());
    let fix_text = fs::read(dir.join(format!("{}.fix", first.name)))?;
    let back_fix = vlsi_hypergraph::io::read_fix(fix_text.as_slice(), back.num_vertices())?;
    assert_eq!(back_fix.num_fixed(), first.fixed.num_fixed());
    println!("round-tripped {} successfully", first.name);
    Ok(())
}
