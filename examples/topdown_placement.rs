//! Top-down placement — the application that motivates the paper.
//!
//! Generates an IBM-like synthetic circuit, places it with the
//! recursive-bisection placer (whose every bisection is a fixed-terminals
//! partitioning instance), and compares wirelength with and without
//! terminal propagation.
//!
//! Run with: `cargo run --release --example topdown_placement`

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_netgen::instances::ibm01_like_scaled;
use vlsi_placer::{hpwl, legalize_rows, PlacerConfig, TopDownPlacer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ibm01_like_scaled(0.08, 7); // ~1000 cells
    println!(
        "circuit {}: {} cells, {} pads, {} nets",
        circuit.name,
        circuit.num_cells(),
        circuit.num_pads(),
        circuit.hypergraph.num_nets()
    );

    for propagate in [true, false] {
        let placer = TopDownPlacer::new(PlacerConfig {
            terminal_propagation: propagate,
            ..PlacerConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1999);
        let placement = placer.place_circuit(&circuit, &mut rng)?;
        let wl = hpwl(&circuit.hypergraph, &placement.positions);
        println!(
            "terminal propagation {:>5}: HPWL = {:10.1}, {} bisections, \
             avg fixed fraction per instance = {:.1}%",
            propagate,
            wl,
            placement.num_bisections,
            100.0 * placement.avg_fixed_fraction()
        );
    }
    // Legalize the terminal-propagated placement into standard-cell rows.
    let placer = TopDownPlacer::new(PlacerConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1999);
    let placement = placer.place_circuit(&circuit, &mut rng)?;
    let anchored: Vec<bool> = circuit
        .hypergraph
        .vertices()
        .map(|v| circuit.is_pad(v))
        .collect();
    let rows = (circuit.num_cells() as f64).sqrt().round() as usize;
    let legal = legalize_rows(
        &circuit.hypergraph,
        &placement.positions,
        &anchored,
        circuit.die,
        rows.max(1),
    );
    println!(
        "\nlegalized into {rows} rows: HPWL {:.1} -> {:.1} \
         (mean displacement {:.2})",
        hpwl(&circuit.hypergraph, &placement.positions),
        hpwl(&circuit.hypergraph, &legal.positions),
        legal.mean_displacement
    );
    println!(
        "\nNote how every bisection after the first carries fixed terminals —\n\
         the paper's point: the partitioner's real-world inputs are never\n\
         free hypergraphs."
    );
    Ok(())
}
