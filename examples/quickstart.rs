//! Quickstart: build a hypergraph, fix some terminals, partition it.
//!
//! Run with: `cargo run --release --example quickstart`

use vlsi_rng::ChaCha8Rng;
use vlsi_rng::SeedableRng;

use vlsi_hypergraph::{
    validate_partitioning, BalanceConstraint, FixedVertices, HypergraphBuilder, Objective, PartId,
    Partitioning, Tolerance, VertexId,
};
use vlsi_partition::{MultilevelConfig, MultilevelPartitioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small circuit: two 8-cell clusters joined by three nets, plus two
    // zero-area pad terminals pinned to opposite sides.
    let mut b = HypergraphBuilder::new();
    let cells: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
    let pad_left = b.add_vertex(0);
    let pad_right = b.add_vertex(0);
    for group in [&cells[0..8], &cells[8..16]] {
        for w in group.windows(2) {
            b.add_net(1, [w[0], w[1]])?;
        }
        // Each cluster is also tied together by one big net.
        b.add_net(1, group.iter().copied())?;
    }
    for k in 0..3 {
        b.add_net(1, [cells[k], cells[8 + k]])?;
    }
    b.add_net(1, [pad_left, cells[0]])?;
    b.add_net(1, [pad_right, cells[15]])?;
    let hg = b.build()?;

    // The fixed-terminals regime: pads are pre-assigned to partitions.
    let mut fixed = FixedVertices::all_free(hg.num_vertices());
    fixed.fix(pad_left, PartId(0));
    fixed.fix(pad_right, PartId(1));

    // The paper's setup: bisection with 2% balance tolerance.
    let balance = BalanceConstraint::bisection(hg.total_weight(), Tolerance::Relative(0.10));

    let partitioner = MultilevelPartitioner::new(MultilevelConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(1999);
    let result = partitioner.run(&hg, &fixed, &balance, &mut rng)?;

    println!("cut = {}", result.cut);
    for side in 0..2 {
        let members: Vec<String> = hg
            .vertices()
            .filter(|v| result.parts[v.index()] == PartId(side))
            .map(|v| format!("{v}"))
            .collect();
        println!("partition {side}: {}", members.join(" "));
    }

    // Independent validation: fixities honoured, balance satisfied, cut
    // recomputed from scratch.
    let p = Partitioning::from_parts(&hg, 2, result.parts.clone())?;
    let report = validate_partitioning(&hg, &p, &balance, &fixed);
    println!("validation: {report}");
    assert!(report.is_valid());
    assert_eq!(p.cut_value(Objective::Cut), result.cut);

    // The pads stayed where they were fixed.
    assert_eq!(result.parts[pad_left.index()], PartId(0));
    assert_eq!(result.parts[pad_right.index()], PartId(1));
    // And the clusters ended up on the pads' sides: cells adjacent to a
    // pad land with that pad.
    assert_eq!(result.parts[VertexId(0).index()], PartId(0));
    assert_eq!(result.parts[VertexId(15).index()], PartId(1));
    println!("ok");
    Ok(())
}
