#!/usr/bin/env bash
# Tier-1 verification gate (see README "Tier-1 gate").
#
# Everything runs with --offline: the workspace has no external crates, so
# this must succeed on a machine with no network and no registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check --all

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline'
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "==> cargo test --doc --offline"
cargo test --doc -q --offline --workspace

echo "ci.sh: all gates passed"
