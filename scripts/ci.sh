#!/usr/bin/env bash
# Tier-1 verification gate (see README "Tier-1 gate").
#
# Everything runs with --offline: the workspace has no external crates, so
# this must succeed on a machine with no network and no registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check --all

# -D deprecated keeps migrated call sites honest: after the RunCtx engine
# API redesign the legacy partition/refine triplets are deprecated wrappers,
# and no in-repo code may call them except the places that exist to pin the
# wrappers' behaviour. Exemptions (each carries a file-level or item-level
# #[allow(deprecated)]):
#   - tests/runctx_equivalence.rs: asserts legacy == *_ctx byte-for-byte.
#   - crates/core/src/engine.rs (trait defaults): a deprecated wrapper may
#     reference its own deprecated siblings in rustdoc.
echo "==> cargo clippy -- -D warnings -D deprecated"
cargo clippy --offline --workspace --all-targets -- -D warnings -D deprecated

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline'
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "==> cargo test --doc --offline"
cargo test --doc -q --offline --workspace

# Perf smoke gate: run the perf-regression suite with a small sample count
# and fail on a >15% median regression against the checked-in baseline.
# The suite writes results/bench/BENCH_partition.json (the CI artifact) and
# prints the 4-thread speedup of the parallelized phases. On a single-core
# builder the t1 slices (partition/*/t1, including the synchronous-round
# partition/refine_parallel/t1) are the meaningful smoke signal — the
# t2–t8 slices pay scoped-thread spawns with no parallel speedup and only
# guard per-round freeze/merge overhead. Skip with PERF_SMOKE=0 (e.g. on
# heavily-loaded builders where wall-clock medians are meaningless).
if [ "${PERF_SMOKE:-1}" = "1" ]; then
    echo "==> perf smoke gate (cargo bench -p bench --bench perf_suite)"
    TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-5}" \
    PERF_GATE=1 \
    PERF_BASELINE="${PERF_BASELINE:-results/bench/BENCH_partition.baseline.json}" \
        cargo bench --offline -p bench --bench perf_suite
    echo "==> perf artifact: results/bench/BENCH_partition.json"
else
    echo "==> perf smoke gate skipped (PERF_SMOKE=0)"
fi

echo "ci.sh: all gates passed"
