#!/usr/bin/env bash
# Tier-1 verification gate (see README "Tier-1 gate").
#
# Everything runs with --offline: the workspace has no external crates, so
# this must succeed on a machine with no network and no registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check --all

# -D deprecated keeps migrated call sites honest: after the RunCtx engine
# API redesign the legacy partition/refine triplets are deprecated wrappers,
# and after the Multistart builder redesign the nine multistart* free
# functions are too; no in-repo code may call any of them except the places
# that exist to pin the wrappers' behaviour. Exemptions (each carries a
# file-level or item-level #[allow(deprecated)]):
#   - tests/runctx_equivalence.rs: asserts legacy == *_ctx byte-for-byte.
#   - tests/multistart_equivalence.rs: asserts every multistart* wrapper ==
#     the Multistart builder byte-for-byte.
#   - crates/core/src/engine.rs (trait defaults) and the lib.rs re-exports:
#     a deprecated wrapper may reference its own deprecated siblings.
echo "==> cargo clippy -- -D warnings -D deprecated"
cargo clippy --offline --workspace --all-targets -- -D warnings -D deprecated

echo '==> RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline'
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "==> cargo test --doc --offline"
cargo test --doc -q --offline --workspace

# Doc integrity gate: every relative markdown link in README/docs must
# resolve, the doc set must cross-reference itself, and PROTOCOL.md must
# enumerate exactly vlsi_service::ERROR_CODES (same codes, same order)
# plus every request/response field. These also run inside the plain
# `cargo test` above; re-running them by name makes a doc-rot failure
# show up as its own CI step instead of somewhere in the workspace noise.
echo "==> doc link + protocol doc gate"
cargo test -q --offline -p fixed-vertices-repro --test doc_links
cargo test -q --offline -p vlsi-service --test protocol_doc

# Service soak smoke: bring up an in-process server, drive a bounded
# mixed cold/warm workload over concurrent TCP connections, and fail on
# any error or failed connection. Deeper gates (warm-start pass counts,
# cross-worker-count determinism, latency bounds) live in
# crates/service/tests/soak.rs and already ran under `cargo test`; this
# step exercises the real binary end to end. Skip with SOAK_SMOKE=0.
if [ "${SOAK_SMOKE:-1}" = "1" ]; then
    echo "==> service soak smoke (loadgen --spawn)"
    soak_out="$(cargo run --release --offline -q -p vlsi-experiments --bin loadgen -- \
        --spawn --connections 4 --requests 6 --seed 3 2>/dev/null)"
    echo "$soak_out"
    case "$soak_out" in
        *'"errors":0,"failed_connections":0'*) ;;
        *) echo "ci.sh: soak smoke reported errors" >&2; exit 1 ;;
    esac
else
    echo "==> service soak smoke skipped (SOAK_SMOKE=0)"
fi

# Heterogeneous resource smoke: a scaled netgen instance with three
# resource dimensions per vertex, ~5% fixed vertices, explicit asymmetric
# per-part capacity vectors and the connectivity (km1) objective at k=4.
# The binary exits non-zero unless the answer is legal under the capacity
# balance, every per-part per-resource load fits its row, and the
# reported km1 matches an independent recomputation. Bounded (~1 s);
# shrink with HETERO_SMOKE_SCALE or skip with HETERO_SMOKE=0.
if [ "${HETERO_SMOKE:-1}" = "1" ]; then
    echo "==> heterogeneous resource smoke (hetero_smoke)"
    HETERO_SMOKE_SCALE="${HETERO_SMOKE_SCALE:-0.1}" \
        cargo run --release --offline -q -p vlsi-experiments --bin hetero_smoke
else
    echo "==> heterogeneous resource smoke skipped (HETERO_SMOKE=0)"
fi

# Quality-phase smoke: a scaled netgen instance with 30% fixed vertices
# (good regime), plain 4-start multistart vs. the same budget with
# `.vcycles(2).ensemble(true)`. The binary exits non-zero unless the
# quality answer is legal (fixity + balance referee), its best cut is no
# worse than the plain run's, and at least one V-cycle completed in the
# trace stream. Bounded (~1 s); shrink with ENSEMBLE_SMOKE_SCALE or skip
# with ENSEMBLE_SMOKE=0.
if [ "${ENSEMBLE_SMOKE:-1}" = "1" ]; then
    echo "==> quality-phase smoke (ensemble_smoke)"
    ENSEMBLE_SMOKE_SCALE="${ENSEMBLE_SMOKE_SCALE:-0.1}" \
        cargo run --release --offline -q -p vlsi-experiments --bin ensemble_smoke
else
    echo "==> quality-phase smoke skipped (ENSEMBLE_SMOKE=0)"
fi

# Million-cell scale smoke: stream-generate a Rent-faithful 10^6-cell
# instance, run a full multilevel bisection on it, check legality, and
# gate peak RSS — the memory-safety net for the compact CSR layout.
# Budget: ~30 s wall, < 1 GiB RSS on an unloaded 8-way builder. Shrink
# with SCALE_SMOKE_CELLS (e.g. 100000 on tiny builders) or skip with
# SCALE_SMOKE=0; SCALE_SMOKE_MAX_RSS_MB=0 disables only the RSS gate.
if [ "${SCALE_SMOKE:-1}" = "1" ]; then
    echo "==> million-cell scale smoke (scale_smoke)"
    SCALE_SMOKE_CELLS="${SCALE_SMOKE_CELLS:-1000000}" \
    SCALE_SMOKE_MAX_RSS_MB="${SCALE_SMOKE_MAX_RSS_MB:-1024}" \
        cargo run --release --offline -q -p bench --bin scale_smoke
else
    echo "==> million-cell scale smoke skipped (SCALE_SMOKE=0)"
fi

# Perf smoke gate: run the perf-regression suite with a small sample count
# and fail on a >15% median regression against the checked-in baseline.
# The suite writes results/bench/BENCH_partition.json (the CI artifact) and
# prints the 4-thread speedup of the parallelized phases. On a single-core
# builder the t1 slices (partition/*/t1, including the synchronous-round
# partition/refine_parallel/t1) are the meaningful smoke signal — the
# t2–t8 slices pay scoped-thread spawns with no parallel speedup and only
# guard per-round freeze/merge overhead. Skip with PERF_SMOKE=0 (e.g. on
# heavily-loaded builders where wall-clock medians are meaningless). The
# suite's million-cell scale/ group (single-shot ~30 s partition plus a
# peak-RSS record) can be skipped on its own with PERF_SCALE=0; the gate
# then ignores scale/ baseline entries.
if [ "${PERF_SMOKE:-1}" = "1" ]; then
    echo "==> perf smoke gate (cargo bench -p bench --bench perf_suite)"
    TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-5}" \
    PERF_GATE=1 \
    PERF_BASELINE="${PERF_BASELINE:-results/bench/BENCH_partition.baseline.json}" \
        cargo bench --offline -p bench --bench perf_suite
    echo "==> perf artifact: results/bench/BENCH_partition.json"
else
    echo "==> perf smoke gate skipped (PERF_SMOKE=0)"
fi

echo "ci.sh: all gates passed"
